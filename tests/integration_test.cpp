// End-to-end comparison of all seven algorithms on one shared task — the
// miniature version of the paper's Section IV claims, now driven through the
// Scenario API (registry + ScenarioSpec + Runner) end to end:
//   (1) SAPS-PSGD converges comparably to D-PSGD;
//   (2) SAPS-PSGD uses the least per-worker traffic of all algorithms;
//   (3) with bandwidth, SAPS-PSGD's communication time beats the
//       decentralized full-model baselines;
//   (4) a failure-dynamics scenario (dropout at round R, rejoin at R')
//       expressed in a spec FILE matches the hand-wired on_round equivalent
//       bit for bit.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/saps.hpp"
#include "scenario/runner.hpp"
#include "test_util.hpp"

namespace saps {
namespace {

// Historical integration workload: 5 classes in 10-d, hidden width 24
// (test_util::BlobSpec{960, 240, 10, 5, 0.35, 808, 24}), 8 workers, 12
// epochs — the FedAvg-family algorithms advance one communication round per
// epoch, so the epoch budget must give S-FedAvg enough rounds to cover
// coordinates (coverage = 1-(1-1/c)^rounds).
scenario::ScenarioSpec base_spec() {
  scenario::ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("blob-train", "960");
  spec.set("blob-test", "240");
  spec.set("blob-features", "10");
  spec.set("blob-classes", "5");
  spec.set("blob-noise", "0.35");
  spec.set("blob-data-seed", "808");
  spec.set("blob-hidden", "24");
  spec.set("workers", "8");
  spec.set("epochs", "12");
  spec.set("batch", "16");
  spec.set("lr", "0.08");
  spec.set("seed", "21");
  spec.set("bandwidth", "uniform");
  spec.set("bandwidth-seed", "13");
  // Compression ratios scaled down from the paper's (c=1000/100/4) to match
  // the miniature round budget; the ORDERING claims are scale-free.
  spec.set("topk-c", "20");
  spec.set("sfedavg-c", "5");
  spec.set("dcd-c", "4");
  spec.set("saps-c", "50");
  spec.set("fedavg-steps", "0");  // one local epoch per round
  spec.threads = test_util::env_threads();
  return spec;
}

class AllAlgorithms : public ::testing::Test {
 protected:
  static scenario::Runner& runner() {
    static scenario::Runner shared(base_spec());
    return shared;
  }
};

TEST_F(AllAlgorithms, SevenWayComparisonReproducesPaperOrdering) {
  const auto runs = runner().run_all();
  ASSERT_EQ(runs.size(), 7u);

  auto by_name = [&](const std::string& name) -> const scenario::RunRecord& {
    for (const auto& r : runs) {
      if (r.name == name) return r;
    }
    throw std::runtime_error("missing " + name);
  };

  // Every algorithm learns the blob task.
  for (const auto& r : runs) {
    EXPECT_GT(r.result.final().accuracy, 0.75) << r.name;
  }

  // Claim (1): SAPS ≈ D-PSGD accuracy (within a few points).
  EXPECT_NEAR(by_name("SAPS-PSGD").result.final().accuracy,
              by_name("D-PSGD").result.final().accuracy, 0.1);

  // Claim (2): lowest traffic of all seven.
  const double saps_mb = by_name("SAPS-PSGD").traffic_mb;
  for (const auto& r : runs) {
    if (r.name != "SAPS-PSGD") {
      EXPECT_LT(saps_mb, r.traffic_mb) << "vs " << r.name;
    }
  }
  // And by a large factor against the dense decentralized baselines.
  EXPECT_LT(saps_mb * 10.0, by_name("D-PSGD").traffic_mb);

  // Claim (3): communication time beats dense decentralized baselines.
  EXPECT_LT(by_name("SAPS-PSGD").comm_seconds,
            by_name("D-PSGD").comm_seconds);
  EXPECT_LT(by_name("SAPS-PSGD").comm_seconds,
            by_name("DCD-PSGD").comm_seconds);
}

TEST_F(AllAlgorithms, MetricHistoriesAreMonotoneInRoundsAndTraffic) {
  auto spec = base_spec();
  spec.set("saps-c", "20");
  scenario::Runner saps_runner(spec, runner().workload());
  const auto r = saps_runner.run("saps");
  for (std::size_t i = 1; i < r.result.history.size(); ++i) {
    EXPECT_GE(r.result.history[i].round, r.result.history[i - 1].round);
    EXPECT_GE(r.result.history[i].worker_mb,
              r.result.history[i - 1].worker_mb);
    EXPECT_GE(r.result.history[i].comm_seconds,
              r.result.history[i - 1].comm_seconds);
  }
}

TEST(NonIid, SapsStillLearnsUnderShardPartition) {
  scenario::ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("blob-train", "960");
  spec.set("blob-test", "240");
  spec.set("blob-features", "10");
  spec.set("blob-classes", "5");
  spec.set("blob-noise", "0.35");
  spec.set("blob-data-seed", "909");
  spec.set("blob-hidden", "24");
  spec.set("workers", "8");
  spec.set("epochs", "6");
  spec.set("batch", "16");
  spec.set("lr", "0.05");
  spec.set("seed", "33");
  spec.set("partition", "shard");
  spec.set("shards-per-worker", "2");
  spec.set("saps-c", "10");
  spec.threads = test_util::env_threads();
  scenario::Runner runner(spec);
  const auto record = runner.run("saps");
  EXPECT_GT(record.result.final().accuracy, 0.6);
}

// The failure-dynamics scenario — dropout at round R, rejoin at round R' —
// expressed declaratively in a spec FILE and executed by the Runner must be
// bit-identical to the ad-hoc coordinator/engine set_active wiring it
// replaces (the geo_federated pattern).
TEST(FailureDynamics, SpecFileDropoutRejoinMatchesManualWiringBitForBit) {
  constexpr std::size_t kDrop = 5, kRejoin = 25;
  const std::string spec_path =
      ::testing::TempDir() + "/failure_dynamics.spec";
  {
    std::ofstream out(spec_path);
    out << "# dropout/rejoin scenario: workers 2 and 5 away for rounds ["
        << kDrop << ", " << kRejoin << ")\n"
        << "workload=blob\n"
        << "algorithm=saps\n"
        << "blob-train=960\nblob-test=240\nblob-features=10\n"
        << "blob-classes=5\nblob-noise=0.35\nblob-data-seed=808\n"
        << "blob-hidden=24\n"
        << "workers=8\nepochs=6\nbatch=16\nlr=0.08\nseed=21\n"
        << "bandwidth=uniform\nbandwidth-seed=13\n"
        << "saps-c=20\n"
        << "failures=2@" << kDrop << "-" << kRejoin << ",5@" << kDrop << "-"
        << kRejoin << "\n";
  }
  std::ifstream in(spec_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto spec = scenario::parse_spec_text(buffer.str());
  spec.threads = test_util::env_threads();
  scenario::Runner runner(spec);
  const auto from_spec = runner.run("saps");
  EXPECT_GT(from_spec.result.final().accuracy, 0.6);

  // Manual twin: same engine workload, hand-wired on_round set_active.
  const test_util::BlobSpec blob{960, 240, 10, 5, 0.35, 808, 24};
  sim::SimConfig cfg;
  cfg.workers = 8;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.lr = 0.08;
  cfg.seed = 21;
  auto engine = test_util::blob_engine(
      cfg, blob, net::random_uniform_bandwidth(8, 13));
  core::SapsConfig manual_cfg{.compression = 20.0};
  manual_cfg.on_round = [&](std::size_t round, core::Coordinator& coord,
                            sim::Engine& eng) {
    const bool away = round >= kDrop && round < kRejoin;
    for (const std::size_t w : {2u, 5u}) {
      coord.set_active(w, !away);
      eng.set_active(w, !away);
    }
  };
  core::SapsPsgd manual(manual_cfg);
  const auto manual_result = manual.run(engine);

  ASSERT_EQ(from_spec.result.history.size(), manual_result.history.size());
  for (std::size_t i = 0; i < manual_result.history.size(); ++i) {
    EXPECT_EQ(from_spec.result.history[i].loss,
              manual_result.history[i].loss);
    EXPECT_EQ(from_spec.result.history[i].accuracy,
              manual_result.history[i].accuracy);
    EXPECT_EQ(from_spec.result.history[i].worker_mb,
              manual_result.history[i].worker_mb);
    EXPECT_EQ(from_spec.result.history[i].comm_seconds,
              manual_result.history[i].comm_seconds);
  }
}

}  // namespace
}  // namespace saps
