// Kernel-equivalence suite for the blocked GEMM layer (tensor/gemm.cpp).
//
// The kernel layer documents an exact per-element contract — seed (0 or
// prior C), then one strictly k-ascending fma chain, then the fused
// epilogue — so every comparison here is BIT-EXACT equality against a naive
// reference implementing that contract directly: over shapes with tile
// tails (m, k, n not multiples of the 4×16 micro-tile), multi-panel k/m/n
// (crossing the cache-block sizes), fused epilogues vs separate ops, and
// the portable vs AVX2 backends.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace saps::ops {
namespace {

struct Shape {
  std::size_t m, k, n;
};

// Tails in every dimension, micro-tile multiples, and shapes crossing the
// kMc=128 / kKc=256 / kNc=512 cache blocks.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {3, 5, 2},     {4, 16, 16},  {5, 17, 9},
    {8, 8, 8},    {16, 33, 24}, {17, 40, 31},  {31, 144, 20}, {129, 5, 40},
    {20, 300, 24}, {4, 9, 520}, {33, 520, 17},
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float() - 0.5f;
  return v;
}

// The documented per-element contract, implemented naively.
void ref_gemm(const float* a, std::size_t a_rs, std::size_t a_cs,
              const float* b, std::size_t b_rs, std::size_t b_cs, float* c,
              std::size_t m, std::size_t k, std::size_t n, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float s = accumulate ? c[i * n + j] : 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s = std::fma(a[i * a_rs + kk * a_cs], b[kk * b_rs + j * b_cs], s);
      }
      c[i * n + j] = s;
    }
  }
}

void expect_bit_equal(const std::vector<float>& got,
                      const std::vector<float>& want, const Shape& s) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "m=" << s.m << " k=" << s.k << " n=" << s.n
                               << " at " << i;
  }
}

TEST(BlockedGemm, MatchesReferenceOverTailShapes) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 11);
    auto b = random_vec(s.k * s.n, 13);
    std::vector<float> c(s.m * s.n, -7.0f);  // stale values must be ignored
    auto want = c;
    gemm(a, b, c, s.m, s.k, s.n);
    ref_gemm(a.data(), s.k, 1, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             false);
    expect_bit_equal(c, want, s);
  }
}

TEST(BlockedGemm, AccumulateMatchesReference) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 17);
    auto b = random_vec(s.k * s.n, 19);
    auto c = random_vec(s.m * s.n, 23);
    auto want = c;
    gemm_acc(a, b, c, s.m, s.k, s.n);
    ref_gemm(a.data(), s.k, 1, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             true);
    expect_bit_equal(c, want, s);
  }
}

TEST(BlockedGemm, AtBMatchesReference) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.k * s.m, 29);  // stored (k×m)
    auto b = random_vec(s.k * s.n, 31);
    auto c = random_vec(s.m * s.n, 37);
    auto want = c;
    gemm_at_b_acc(a, b, c, s.m, s.k, s.n);
    ref_gemm(a.data(), 1, s.m, b.data(), s.n, 1, want.data(), s.m, s.k, s.n,
             true);
    expect_bit_equal(c, want, s);
  }
}

TEST(BlockedGemm, ABtMatchesReference) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 41);
    auto b = random_vec(s.n * s.k, 43);  // stored (n×k)
    auto c = random_vec(s.m * s.n, 47);
    auto want = c;
    gemm_a_bt_acc(a, b, c, s.m, s.k, s.n);
    ref_gemm(a.data(), s.k, 1, b.data(), 1, s.k, want.data(), s.m, s.k, s.n,
             true);
    expect_bit_equal(c, want, s);
  }
}

// The fused epilogue must equal the unfused sequence exactly: gemm, then
// bias add, then relu as separate element passes.
TEST(FusedEpilogue, BiasRowReluMatchesSeparateOps) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 53);
    auto b = random_vec(s.k * s.n, 59);
    auto bias = random_vec(s.m, 61);
    std::vector<float> fused(s.m * s.n), want(s.m * s.n);
    gemm_fused(a, b, fused, s.m, s.k, s.n,
               {.bias = bias,
                .bias_axis = GemmEpilogue::BiasAxis::kRow,
                .relu = true});
    gemm(a, b, want, s.m, s.k, s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        float v = want[i * s.n + j] + bias[i];
        want[i * s.n + j] = v > 0.0f ? v : 0.0f;
      }
    }
    expect_bit_equal(fused, want, s);
  }
}

TEST(FusedEpilogue, BiasColMatchesSeparateOps) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 67);
    auto b = random_vec(s.k * s.n, 71);
    auto bias = random_vec(s.n, 73);
    std::vector<float> fused(s.m * s.n), want(s.m * s.n);
    gemm_fused(a, b, fused, s.m, s.k, s.n,
               {.bias = bias, .bias_axis = GemmEpilogue::BiasAxis::kCol});
    gemm(a, b, want, s.m, s.k, s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) want[i * s.n + j] += bias[j];
    }
    expect_bit_equal(fused, want, s);
  }
}

TEST(FusedEpilogue, ABtFusedMatchesAccPlusBias) {
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 79);
    auto b = random_vec(s.n * s.k, 83);
    auto bias = random_vec(s.n, 89);
    std::vector<float> fused(s.m * s.n), want(s.m * s.n, 0.0f);
    gemm_a_bt_fused(a, b, fused, s.m, s.k, s.n,
                    {.bias = bias, .bias_axis = GemmEpilogue::BiasAxis::kCol});
    gemm_a_bt_acc(a, b, want, s.m, s.k, s.n);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) want[i * s.n + j] += bias[j];
    }
    expect_bit_equal(fused, want, s);
  }
}

TEST(FusedEpilogue, RejectsWrongBiasLength) {
  std::vector<float> a(6), b(8), c(12), bias(5);
  EXPECT_THROW(
      gemm_fused(a, b, c, 3, 2, 4,
                 {.bias = bias, .bias_axis = GemmEpilogue::BiasAxis::kRow}),
      std::invalid_argument);
  EXPECT_THROW(
      gemm_fused(a, b, c, 3, 2, 4,
                 {.bias = bias, .bias_axis = GemmEpilogue::BiasAxis::kCol}),
      std::invalid_argument);
}

TEST(BlockedGemm, KZeroZeroesOrPreservesC) {
  std::vector<float> a, b;
  std::vector<float> c(6, 3.5f);
  gemm(a, b, c, 2, 0, 3);
  for (const float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> kept(6, 2.5f);
  gemm_acc(a, b, kept, 2, 0, 3);
  for (const float v : kept) EXPECT_EQ(v, 2.5f);

  std::vector<float> bias = {1.0f, -2.0f, 3.0f};
  std::vector<float> fused(6, 9.0f);
  gemm_fused(a, b, fused, 2, 0, 3,
             {.bias = bias,
              .bias_axis = GemmEpilogue::BiasAxis::kCol,
              .relu = true});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(fused[i * 3 + 0], 1.0f);
    EXPECT_EQ(fused[i * 3 + 1], 0.0f);  // relu(-2)
    EXPECT_EQ(fused[i * 3 + 2], 3.0f);
  }
}

// Runtime dispatch must never change results: the portable std::fma path
// and the AVX2 intrinsics path are bit-identical.
TEST(GemmBackend, PortableAndAvx2AreBitIdentical) {
  ASSERT_NE(gemm_backend(), GemmBackend::kAuto);  // always resolved
  if (!gemm_backend_available(GemmBackend::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  for (const auto& s : kShapes) {
    auto a = random_vec(s.m * s.k, 97);
    auto b = random_vec(s.k * s.n, 101);
    auto bias = random_vec(s.m, 103);
    const GemmEpilogue ep{.bias = bias,
                          .bias_axis = GemmEpilogue::BiasAxis::kRow,
                          .relu = true};
    std::vector<float> c_avx2(s.m * s.n), c_portable(s.m * s.n);
    set_gemm_backend(GemmBackend::kAvx2);
    gemm_fused(a, b, c_avx2, s.m, s.k, s.n, ep);
    set_gemm_backend(GemmBackend::kPortable);
    gemm_fused(a, b, c_portable, s.m, s.k, s.n, ep);
    set_gemm_backend(GemmBackend::kAuto);
    expect_bit_equal(c_avx2, c_portable, s);
  }
}

TEST(GemmBackend, RejectsUnavailableBackend) {
  if (gemm_backend_available(GemmBackend::kAvx2)) {
    GTEST_SKIP() << "all backends available on this CPU";
  }
  EXPECT_THROW(set_gemm_backend(GemmBackend::kAvx2), std::invalid_argument);
}

// Intra-op parallelism must never change results: every GEMM variant is
// bit-identical with no pool, a 1-thread pool, and a 4-thread pool, on both
// backends.  Shapes cover the wide-N split (conv forward), the small-k
// no-pack decomposition (300×8×512 engages the N-split with k below the
// packing cutoff), tails in every dimension under the chunked split, and one
// below-threshold shape that must stay serial yet still match.
TEST(ParallelGemm, BitIdenticalAcrossThreadCountsAndBackends) {
  const Shape par_shapes[] = {
      {16, 144, 1024}, {300, 8, 512}, {301, 9, 517}, {64, 576, 64}, {5, 17, 9},
  };
  const GemmBackend backends[] = {GemmBackend::kAvx2, GemmBackend::kPortable};
  ASSERT_EQ(gemm_pool(), nullptr);  // tests own the global registration
  for (const auto& s : par_shapes) {
    auto a = random_vec(s.m * s.k, 107);
    auto at = random_vec(s.k * s.m, 109);  // stored (k×m)
    auto b = random_vec(s.k * s.n, 113);
    auto bt = random_vec(s.n * s.k, 127);  // stored (n×k)
    auto bias_m = random_vec(s.m, 131);
    auto bias_n = random_vec(s.n, 137);
    auto c0 = random_vec(s.m * s.n, 139);
    const GemmEpilogue row_ep{.bias = bias_m,
                              .bias_axis = GemmEpilogue::BiasAxis::kRow,
                              .relu = true};
    const GemmEpilogue col_ep{.bias = bias_n,
                              .bias_axis = GemmEpilogue::BiasAxis::kCol};
    const auto run_all = [&] {
      std::vector<std::vector<float>> r(6, c0);
      gemm(a, b, r[0], s.m, s.k, s.n);
      gemm_acc(a, b, r[1], s.m, s.k, s.n);
      gemm_at_b_acc(at, b, r[2], s.m, s.k, s.n);
      gemm_a_bt_acc(a, bt, r[3], s.m, s.k, s.n);
      gemm_fused(a, b, r[4], s.m, s.k, s.n, row_ep);
      gemm_a_bt_fused(a, bt, r[5], s.m, s.k, s.n, col_ep);
      return r;
    };
    for (const GemmBackend be : backends) {
      if (!gemm_backend_available(be)) continue;
      set_gemm_backend(be);
      const auto want = run_all();  // serial reference: no pool registered
      for (const std::size_t threads : {1u, 4u}) {
        ThreadPool pool(threads);
        set_gemm_pool(&pool);
        const auto got = run_all();
        set_gemm_pool(nullptr);
        for (std::size_t v = 0; v < want.size(); ++v) {
          expect_bit_equal(got[v], want[v], s);
        }
      }
    }
    set_gemm_backend(GemmBackend::kAuto);
  }
}

// A GEMM issued FROM a pool task (nested fan-out) must fall back to the
// serial path instead of deadlocking on its own queue — and still match.
TEST(ParallelGemm, NestedCallOnWorkerRunsSerialAndMatches) {
  const Shape s{16, 144, 1024};
  auto a = random_vec(s.m * s.k, 149);
  auto b = random_vec(s.k * s.n, 151);
  std::vector<float> want(s.m * s.n);
  gemm(a, b, want, s.m, s.k, s.n);

  ThreadPool pool(2);
  set_gemm_pool(&pool);
  std::vector<std::vector<float>> got(2,
                                      std::vector<float>(s.m * s.n, 0.0f));
  pool.parallel_for(2, [&](std::size_t i) {
    gemm(a, b, got[i], s.m, s.k, s.n);
  });
  set_gemm_pool(nullptr);
  expect_bit_equal(got[0], want, s);
  expect_bit_equal(got[1], want, s);
}

}  // namespace
}  // namespace saps::ops
