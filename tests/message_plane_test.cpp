// Cross-check suite for the message plane: the traffic charge of every wire
// message (wire_bytes(), what sim::Fabric bills) is pinned against the
// byte-level encoding and against the accounting helpers that predate the
// fabric — compress::masked_wire_bytes, compress::SparseVector::wire_bytes,
// compress::QsgdEncoded::wire_bytes, algos::dense_model_bytes and the
// coordinator control-plane constants — across dimensions, plus
// truncated-input decode tests for every message type.
#include <gtest/gtest.h>

#include "algos/algorithm.hpp"
#include "compress/mask.hpp"
#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "core/coordinator.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace saps::net {
namespace {

constexpr std::size_t kDims[] = {0, 1, 3, 17, 256, 4096};

TEST(ChargeCrossCheck, NotifyMatchesControlPlaneConstant) {
  const NotifyMsg msg{.round = 7, .mask_seed = 0xFEEDULL, .peer = 3};
  EXPECT_DOUBLE_EQ(static_cast<double>(msg.encode().size()),
                   core::kNotifyWireBytes);
  EXPECT_DOUBLE_EQ(msg.wire_bytes(), core::kNotifyWireBytes);
}

TEST(ChargeCrossCheck, RoundEndMatchesControlPlaneConstant) {
  const RoundEndMsg msg{.round = 7, .rank = 3};
  EXPECT_DOUBLE_EQ(static_cast<double>(msg.encode().size()),
                   core::kRoundEndWireBytes);
  EXPECT_DOUBLE_EQ(msg.wire_bytes(), core::kRoundEndWireBytes);
}

TEST(ChargeCrossCheck, MaskedModelMatchesMaskedWireBytesAcrossDims) {
  Rng rng(5);
  for (const auto k : kDims) {
    MaskedModelMsg msg;
    msg.mask_seed = 99;
    msg.round = 2;
    msg.values.resize(k);
    for (auto& v : msg.values) v = rng.next_float();
    const auto bytes = msg.encode();
    EXPECT_DOUBLE_EQ(static_cast<double>(bytes.size()),
                     compress::masked_wire_bytes(k))
        << "k=" << k;
    EXPECT_DOUBLE_EQ(msg.wire_bytes(), compress::masked_wire_bytes(k));
  }
}

TEST(ChargeCrossCheck, SparseDeltaMatchesSparseVectorWireBytesAcrossDims) {
  Rng rng(6);
  for (const auto nnz : kDims) {
    SparseDeltaMsg msg;
    msg.round = 1;
    msg.origin = 4;
    compress::SparseVector equivalent;
    for (std::size_t i = 0; i < nnz; ++i) {
      msg.indices.push_back(static_cast<std::uint32_t>(3 * i));
      msg.values.push_back(rng.next_float());
    }
    equivalent.indices = msg.indices;
    equivalent.values = msg.values;
    const auto bytes = msg.encode();
    EXPECT_DOUBLE_EQ(static_cast<double>(bytes.size()),
                     equivalent.wire_bytes())
        << "nnz=" << nnz;
    EXPECT_DOUBLE_EQ(msg.wire_bytes(), equivalent.wire_bytes());
  }
}

TEST(ChargeCrossCheck, FullModelChargesPaperPayloadPlusPinnedFrame) {
  // FullModelMsg is one of the two deliberate charge/encoding deltas: the
  // paper's Table I counts model parameters moved, so the charge is payload
  // floats only; the physical frame is exactly kFrameBytes on top.
  for (const auto n : kDims) {
    FullModelMsg msg;
    msg.rank = 1;
    msg.params.assign(n, 0.5f);
    EXPECT_DOUBLE_EQ(msg.wire_bytes(), algos::dense_model_bytes(n));
    EXPECT_EQ(msg.encode().size(),
              static_cast<std::size_t>(msg.wire_bytes()) +
                  FullModelMsg::kFrameBytes)
        << "n=" << n;
  }
}

TEST(ChargeCrossCheck, QuantGradMatchesQsgdEncodedWireBytes) {
  // The other deliberate delta: the charge is the information-theoretic
  // QSGD size (sub-byte bits per coordinate); the physical encoding
  // byte-aligns the packed bits and adds the frame.
  Rng rng(7);
  for (const std::uint8_t levels : {1, 2, 4, 15, 127}) {
    for (const auto n : kDims) {
      if (n == 0) continue;  // qsgd_encode rejects empty input
      std::vector<float> x(n);
      for (auto& v : x) v = rng.next_float() - 0.5f;
      Rng enc_rng(11);
      const auto enc = compress::qsgd_encode(x, levels, enc_rng);
      QuantGradMsg msg;
      msg.round = 3;
      msg.origin = 2;
      msg.norm = enc.norm;
      msg.levels = enc.levels;
      msg.quantized = enc.quantized;
      EXPECT_DOUBLE_EQ(msg.wire_bytes(), enc.wire_bytes())
          << "levels=" << int(levels) << " n=" << n;
      const std::size_t packed =
          (msg.bits_per_coord() * n + 7) / 8;  // byte-aligned bit stream
      EXPECT_EQ(msg.encode().size(), QuantGradMsg::kFrameBytes + packed);
    }
  }
}

TEST(QuantGrad, RoundTripsAcrossLevelCounts) {
  Rng rng(8);
  for (const std::uint8_t levels : {1, 3, 4, 127}) {
    std::vector<float> x(257);
    for (auto& v : x) v = rng.next_float() - 0.5f;
    Rng enc_rng(12);
    const auto enc = compress::qsgd_encode(x, levels, enc_rng);
    QuantGradMsg msg;
    msg.round = 9;
    msg.origin = 5;
    msg.norm = enc.norm;
    msg.levels = enc.levels;
    msg.quantized = enc.quantized;
    const auto bytes = msg.encode();
    EXPECT_EQ(peek_type(bytes), MsgType::kQuantGrad);
    const auto back = QuantGradMsg::decode(bytes);
    EXPECT_EQ(back.round, 9u);
    EXPECT_EQ(back.origin, 5u);
    EXPECT_EQ(back.norm, enc.norm);
    EXPECT_EQ(back.levels, levels);
    EXPECT_EQ(back.quantized, enc.quantized);
  }
}

TEST(FullModel, PeekRankMatchesDecodeWithoutPayload) {
  FullModelMsg msg;
  msg.rank = 29;
  msg.params.assign(64, 1.25f);
  const auto bytes = msg.encode();
  EXPECT_EQ(FullModelMsg::peek_rank(bytes), 29u);
  EXPECT_EQ(FullModelMsg::decode(bytes).rank, FullModelMsg::peek_rank(bytes));
  const auto round_end = RoundEndMsg{.round = 1, .rank = 2}.encode();
  EXPECT_THROW((void)FullModelMsg::peek_rank(round_end),
               std::invalid_argument);
  EXPECT_THROW((void)FullModelMsg::peek_rank({}), std::out_of_range);
}

TEST(SparseDelta, PeekOriginMatchesDecodeWithoutPayload) {
  SparseDeltaMsg msg;
  msg.round = 4;
  msg.origin = 17;
  msg.indices = {2, 5, 11};
  msg.values = {0.5f, -0.25f, 1.0f};
  const auto bytes = msg.encode();
  EXPECT_EQ(SparseDeltaMsg::peek_origin(bytes), 17u);
  EXPECT_EQ(SparseDeltaMsg::decode(bytes).origin,
            SparseDeltaMsg::peek_origin(bytes));
  EXPECT_THROW((void)SparseDeltaMsg::peek_origin(
                   RoundEndMsg{.round = 1, .rank = 2}.encode()),
               std::invalid_argument);
  EXPECT_THROW((void)SparseDeltaMsg::peek_origin({}), std::out_of_range);
}

TEST(QuantGrad, PeekOriginMatchesDecodeWithoutUnpacking) {
  QuantGradMsg msg;
  msg.round = 6;
  msg.origin = 23;
  msg.norm = 2.0f;
  msg.levels = 4;
  msg.quantized = {-4, 0, 3, 1};
  const auto bytes = msg.encode();
  EXPECT_EQ(QuantGradMsg::peek_origin(bytes), 23u);
  EXPECT_EQ(QuantGradMsg::decode(bytes).origin,
            QuantGradMsg::peek_origin(bytes));
  EXPECT_THROW((void)QuantGradMsg::peek_origin(
                   RoundEndMsg{.round = 1, .rank = 2}.encode()),
               std::invalid_argument);
  EXPECT_THROW((void)QuantGradMsg::peek_origin({}), std::out_of_range);
}

TEST(QuantGrad, RejectsZeroLevels) {
  QuantGradMsg msg;
  msg.levels = 0;
  msg.quantized.resize(4, 0);
  EXPECT_THROW(msg.encode(), std::invalid_argument);
}

// --- truncated-input decode tests for every message type --------------------

template <typename Msg>
void expect_truncation_rejected(const std::vector<std::uint8_t>& bytes) {
  // Every strict prefix must be rejected: either the reader runs out of
  // bytes (out_of_range) or a length invariant breaks (invalid_argument).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_ANY_THROW((void)Msg::decode(prefix))
        << "cut=" << cut << "/" << bytes.size();
  }
}

TEST(TruncatedDecode, Notify) {
  expect_truncation_rejected<NotifyMsg>(
      NotifyMsg{.round = 1, .mask_seed = 2, .peer = 3}.encode());
}

TEST(TruncatedDecode, RoundEnd) {
  expect_truncation_rejected<RoundEndMsg>(
      RoundEndMsg{.round = 1, .rank = 2}.encode());
}

TEST(TruncatedDecode, MaskedModel) {
  MaskedModelMsg msg;
  msg.mask_seed = 3;
  msg.round = 1;
  msg.values = {1.0f, 2.0f};  // 24-byte message
  const auto bytes = msg.encode();
  // Payload length is implied, so only prefixes that break 4-byte alignment
  // or cut the header are detectably truncated.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    if (cut >= 16 && (cut - 16) % 4 == 0) {
      // Aligned payload truncation is indistinguishable from a shorter
      // masked message by design (count is length-implied).
      const auto back = MaskedModelMsg::decode(prefix);
      EXPECT_EQ(back.values.size(), (cut - 16) / 4);
    } else {
      EXPECT_ANY_THROW((void)MaskedModelMsg::decode(prefix)) << "cut=" << cut;
    }
  }
}

TEST(TruncatedDecode, SparseDelta) {
  SparseDeltaMsg msg;
  msg.round = 1;
  msg.origin = 2;
  msg.indices = {1, 4, 9};
  msg.values = {0.1f, 0.2f, 0.3f};
  expect_truncation_rejected<SparseDeltaMsg>(msg.encode());
}

TEST(TruncatedDecode, FullModel) {
  FullModelMsg msg;
  msg.rank = 1;
  msg.params = {1.0f, 2.0f, 3.0f};
  expect_truncation_rejected<FullModelMsg>(msg.encode());
}

TEST(TruncatedDecode, QuantGrad) {
  QuantGradMsg msg;
  msg.round = 1;
  msg.origin = 2;
  msg.norm = 1.5f;
  msg.levels = 4;
  msg.quantized = {-4, -1, 0, 1, 2, 3, 4, -2, 2};
  expect_truncation_rejected<QuantGradMsg>(msg.encode());
}

TEST(TruncatedDecode, WrongTypeRejectedEvenWhenComplete) {
  const auto notify = NotifyMsg{.round = 1, .mask_seed = 2, .peer = 3}.encode();
  EXPECT_THROW((void)MaskedModelMsg::decode(notify), std::invalid_argument);
  EXPECT_THROW((void)QuantGradMsg::decode(notify), std::invalid_argument);
}

}  // namespace
}  // namespace saps::net
