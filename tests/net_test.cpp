#include <gtest/gtest.h>

#include "net/bandwidth.hpp"
#include "net/netsim.hpp"

namespace saps::net {
namespace {

TEST(BandwidthMatrix, SymmetrizeMin) {
  BandwidthMatrix b(3);
  b.set(0, 1, 10.0);
  b.set(1, 0, 4.0);
  b.symmetrize_min();
  EXPECT_DOUBLE_EQ(b.get(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(b.get(1, 0), 4.0);
}

TEST(BandwidthMatrix, Rejects) {
  EXPECT_THROW(BandwidthMatrix(1), std::invalid_argument);
  BandwidthMatrix b(2);
  EXPECT_THROW(b.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)b.get(0, 5), std::out_of_range);
}

TEST(Fig1, MatrixMatchesPaperValues) {
  const auto b = fig1_city_bandwidth();
  EXPECT_EQ(b.size(), 14u);
  // AliBeijing ↔ AliShanghai: min(1.3, 1.3)/8 MB/s.
  EXPECT_NEAR(b.get(0, 1), 1.3 / 8.0, 1e-9);
  // Frankfurt ↔ London: min(331.2, 276.2)/8.
  EXPECT_NEAR(b.get(6, 7), 276.2 / 8.0, 1e-9);
  // London ↔ Beijing is the paper's pathological 0.2/8 (min of 0.2, 1.6).
  EXPECT_NEAR(b.get(7, 0), 0.2 / 8.0, 1e-9);
  // Symmetry everywhere.
  for (std::size_t i = 0; i < 14; ++i) {
    for (std::size_t j = 0; j < 14; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(b.get(i, j), b.get(j, i));
      }
    }
  }
  EXPECT_EQ(fig1_city_names().size(), 14u);
}

TEST(RandomBandwidth, InRangeAndSymmetric) {
  const auto b = random_uniform_bandwidth(32, 9, 0.0, 5.0);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = i + 1; j < 32; ++j) {
      EXPECT_GT(b.get(i, j), 0.0);
      EXPECT_LE(b.get(i, j), 5.0);
      EXPECT_DOUBLE_EQ(b.get(i, j), b.get(j, i));
    }
  }
}

TEST(RandomBandwidth, Deterministic) {
  const auto a = random_uniform_bandwidth(8, 4);
  const auto b = random_uniform_bandwidth(8, 4);
  EXPECT_DOUBLE_EQ(a.get(2, 5), b.get(2, 5));
}

TEST(NetworkSim, TrafficAccounting) {
  NetworkSim sim(4);
  sim.start_round();
  sim.transfer(0, 1, 100.0);
  sim.transfer(1, 0, 50.0);
  sim.finish_round();
  EXPECT_DOUBLE_EQ(sim.up_bytes(0), 100.0);
  EXPECT_DOUBLE_EQ(sim.down_bytes(0), 50.0);
  EXPECT_DOUBLE_EQ(sim.worker_bytes(0), 150.0);
  EXPECT_DOUBLE_EQ(sim.worker_bytes(1), 150.0);
  EXPECT_DOUBLE_EQ(sim.max_worker_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(sim.mean_worker_bytes(), 75.0);
  EXPECT_EQ(sim.rounds(), 1u);
}

TEST(NetworkSim, RoundTimeIsMaxTransfer) {
  BandwidthMatrix b(3);
  b.set(0, 1, 1.0);  // 1 MB/s
  b.set(1, 0, 1.0);
  b.set(0, 2, 10.0);
  b.set(2, 0, 10.0);
  b.set(1, 2, 10.0);
  b.set(2, 1, 10.0);
  NetworkSim sim(std::move(b));
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // 1 s on the slow link
  sim.transfer(0, 2, 1e6);  // 0.1 s
  const double t = sim.finish_round();
  EXPECT_NEAR(t, 1.0, 1e-12);
  EXPECT_NEAR(sim.total_seconds(), 1.0, 1e-12);
  EXPECT_NEAR(sim.round_bottleneck_mbps().back(), 1.0, 1e-12);
  EXPECT_NEAR(sim.round_mean_mbps().back(), 5.5, 1e-12);
}

TEST(NetworkSim, ProtocolErrors) {
  NetworkSim sim(3);
  EXPECT_THROW(sim.transfer(0, 1, 1.0), std::logic_error);  // outside round
  sim.start_round();
  EXPECT_THROW(sim.start_round(), std::logic_error);  // double open
  EXPECT_THROW(sim.transfer(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.transfer(0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.transfer(0, 1, -5.0), std::invalid_argument);
  sim.finish_round();
  EXPECT_THROW(sim.finish_round(), std::logic_error);
}

TEST(NetworkSim, StatWorkerCountExcludesServer) {
  NetworkSim sim(3);
  sim.set_stat_worker_count(2);
  sim.start_round();
  sim.transfer(0, 2, 100.0);  // node 2 plays "server"
  sim.finish_round();
  EXPECT_DOUBLE_EQ(sim.mean_worker_bytes(), 50.0);  // only nodes 0,1 counted
  EXPECT_DOUBLE_EQ(sim.max_worker_bytes(), 100.0);
}

TEST(BestServer, PicksHighestMeanBandwidthNode) {
  BandwidthMatrix b(3);
  b.set(0, 1, 1.0);
  b.set(1, 0, 1.0);
  b.set(0, 2, 1.0);
  b.set(2, 0, 1.0);
  b.set(1, 2, 10.0);
  b.set(2, 1, 10.0);
  // Node 0 mean = 1; node 1 mean = 5.5; node 2 mean = 5.5 → picks 1 (first).
  EXPECT_EQ(best_server_node(b), 1u);
}

TEST(VirtualServer, MirrorsBestNodeLinks) {
  BandwidthMatrix b(3);
  b.set(0, 1, 2.0);
  b.set(1, 0, 2.0);
  b.set(0, 2, 3.0);
  b.set(2, 0, 3.0);
  b.set(1, 2, 8.0);
  b.set(2, 1, 8.0);
  const auto ext = with_virtual_server(b);
  EXPECT_EQ(ext.size(), 4u);
  const auto best = best_server_node(b);
  for (std::size_t j = 0; j < 3; ++j) {
    if (j == best) continue;
    EXPECT_DOUBLE_EQ(ext.get(3, j), b.get(best, j));
  }
  EXPECT_GT(ext.get(3, best), 0.0);
}

}  // namespace
}  // namespace saps::net
