#include <gtest/gtest.h>

#include "net/bandwidth.hpp"
#include "net/link_model.hpp"

namespace saps::net {
namespace {

TEST(BandwidthMatrix, SymmetrizeMin) {
  BandwidthMatrix b(3);
  b.set(0, 1, 10.0);
  b.set(1, 0, 4.0);
  b.symmetrize_min();
  EXPECT_DOUBLE_EQ(b.get(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(b.get(1, 0), 4.0);
}

TEST(BandwidthMatrix, Rejects) {
  EXPECT_THROW(BandwidthMatrix(1), std::invalid_argument);
  BandwidthMatrix b(2);
  EXPECT_THROW(b.set(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)b.get(0, 5), std::out_of_range);
}

TEST(Fig1, MatrixMatchesPaperValues) {
  const auto b = fig1_city_bandwidth();
  EXPECT_EQ(b.size(), 14u);
  // AliBeijing ↔ AliShanghai: min(1.3, 1.3)/8 MB/s.
  EXPECT_NEAR(b.get(0, 1), 1.3 / 8.0, 1e-9);
  // Frankfurt ↔ London: min(331.2, 276.2)/8.
  EXPECT_NEAR(b.get(6, 7), 276.2 / 8.0, 1e-9);
  // London ↔ Beijing is the paper's pathological 0.2/8 (min of 0.2, 1.6).
  EXPECT_NEAR(b.get(7, 0), 0.2 / 8.0, 1e-9);
  // Symmetry everywhere.
  for (std::size_t i = 0; i < 14; ++i) {
    for (std::size_t j = 0; j < 14; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(b.get(i, j), b.get(j, i));
      }
    }
  }
  EXPECT_EQ(fig1_city_names().size(), 14u);
}

TEST(RandomBandwidth, InRangeAndSymmetric) {
  const auto b = random_uniform_bandwidth(32, 9, 0.0, 5.0);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = i + 1; j < 32; ++j) {
      EXPECT_GT(b.get(i, j), 0.0);
      EXPECT_LE(b.get(i, j), 5.0);
      EXPECT_DOUBLE_EQ(b.get(i, j), b.get(j, i));
    }
  }
}

TEST(RandomBandwidth, Deterministic) {
  const auto a = random_uniform_bandwidth(8, 4);
  const auto b = random_uniform_bandwidth(8, 4);
  EXPECT_DOUBLE_EQ(a.get(2, 5), b.get(2, 5));
}

TEST(LinkModel, TrafficAccounting) {
  LinkModel sim(4);
  sim.start_round();
  sim.transfer(0, 1, 100.0);
  sim.transfer(1, 0, 50.0);
  sim.finish_round();
  EXPECT_DOUBLE_EQ(sim.up_bytes(0), 100.0);
  EXPECT_DOUBLE_EQ(sim.down_bytes(0), 50.0);
  EXPECT_DOUBLE_EQ(sim.worker_bytes(0), 150.0);
  EXPECT_DOUBLE_EQ(sim.worker_bytes(1), 150.0);
  EXPECT_DOUBLE_EQ(sim.max_worker_bytes(), 150.0);
  EXPECT_DOUBLE_EQ(sim.mean_worker_bytes(), 75.0);
  EXPECT_EQ(sim.rounds(), 1u);
}

BandwidthMatrix three_node_matrix() {
  BandwidthMatrix b(3);
  b.set(0, 1, 1.0);  // 1 MB/s
  b.set(1, 0, 1.0);
  b.set(0, 2, 10.0);
  b.set(2, 0, 10.0);
  b.set(1, 2, 10.0);
  b.set(2, 1, 10.0);
  return b;
}

TEST(LinkModel, ZeroLatencyRoundTimeIsMaxTransfer) {
  LinkModel sim(three_node_matrix());
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // 1 s on the slow link
  sim.transfer(0, 2, 1e6);  // 0.1 s
  const double t = sim.finish_round();
  EXPECT_NEAR(t, 1.0, 1e-12);
  EXPECT_NEAR(sim.total_seconds(), 1.0, 1e-12);
  EXPECT_NEAR(sim.round_bottleneck_mbps().back(), 1.0, 1e-12);
  EXPECT_NEAR(sim.round_mean_mbps().back(), 5.5, 1e-12);
}

TEST(LinkModel, LatencyExtendsEveryTransfer) {
  LinkOptions opts;
  opts.latency_seconds = 0.25;
  LinkModel sim(three_node_matrix(), opts);
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // 0.25 + 1.0
  sim.transfer(0, 2, 1e6);  // 0.25 + 0.1
  EXPECT_NEAR(sim.finish_round(), 1.25, 1e-12);
}

TEST(LinkModel, LatencyCountsWithoutBandwidthMatrix) {
  // Traffic-only mode used to report zero time; with latency configured the
  // propagation delay still bounds the round.
  LinkOptions opts;
  opts.latency_seconds = 0.5;
  LinkModel sim(std::size_t{3}, opts);
  sim.start_round();
  sim.transfer(0, 1, 123.0);
  EXPECT_NEAR(sim.finish_round(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(sim.round_bottleneck_mbps().back(), 0.0);
}

TEST(LinkModel, LatencyMatrixOverridesScalarPerLink) {
  LinkOptions opts;
  opts.latency_seconds = 9.0;  // must be ignored for matrix-covered links
  opts.latency_matrix = {0.0, 0.25, 0.5,   //
                         0.25, 0.0, 0.75,  //
                         0.5, 0.75, 0.0};
  LinkModel sim(three_node_matrix(), opts);
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // 0.25 + 1.0
  sim.transfer(0, 2, 1e6);  // 0.5 + 0.1
  EXPECT_NEAR(sim.finish_round(), 1.25, 1e-12);
  sim.start_round();
  sim.transfer(1, 2, 1e6);  // 0.75 + 0.1
  EXPECT_NEAR(sim.finish_round(), 0.85, 1e-12);
}

TEST(LinkModel, LatencyMatrixCanBeAsymmetric) {
  LinkOptions opts;
  opts.latency_matrix = {0.0, 2.0, 0.0,  //
                         0.5, 0.0, 0.0,  //
                         0.0, 0.0, 0.0};
  LinkModel sim(three_node_matrix(), opts);
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // 2.0 + 1.0
  EXPECT_NEAR(sim.finish_round(), 3.0, 1e-12);
  sim.start_round();
  sim.transfer(1, 0, 1e6);  // 0.5 + 1.0
  EXPECT_NEAR(sim.finish_round(), 1.5, 1e-12);
}

TEST(LinkModel, LatencyMatrixVirtualServerFallsBackToScalar) {
  // A matrix narrower than the node set (the engine appends a virtual
  // parameter server) keeps the scalar latency for uncovered endpoints.
  LinkOptions opts;
  opts.latency_seconds = 0.5;
  opts.latency_matrix = {0.0, 0.1,  //
                         0.1, 0.0};
  LinkModel sim(three_node_matrix(), opts);
  sim.start_round();
  sim.transfer(0, 1, 1e6);  // covered: 0.1 + 1.0
  EXPECT_NEAR(sim.finish_round(), 1.1, 1e-12);
  sim.start_round();
  sim.transfer(0, 2, 1e6);  // node 2 uncovered: 0.5 + 0.1
  EXPECT_NEAR(sim.finish_round(), 0.6, 1e-12);
}

TEST(LinkModel, AllZeroLatencyMatrixMatchesScalarZero) {
  // A matrix of zeros must be bit-identical to the legacy scalar path.
  LinkOptions opts;
  opts.latency_matrix = std::vector<double>(9, 0.0);
  LinkModel with_matrix(three_node_matrix(), opts);
  LinkModel scalar(three_node_matrix());
  for (auto* sim : {&with_matrix, &scalar}) {
    sim->start_round();
    sim->transfer(0, 1, 1e6);
    sim->transfer(0, 2, 1e6);
  }
  EXPECT_EQ(with_matrix.finish_round(), scalar.finish_round());
  EXPECT_EQ(with_matrix.total_seconds(), scalar.total_seconds());
}

TEST(LinkModel, LatencyMatrixCountsWithoutBandwidthMatrix) {
  LinkOptions opts;
  opts.latency_matrix = {0.0, 0.4, 0.2,  //
                         0.4, 0.0, 0.2,  //
                         0.2, 0.2, 0.0};
  LinkModel sim(std::size_t{3}, opts);
  sim.start_round();
  sim.transfer(0, 1, 123.0);
  EXPECT_NEAR(sim.finish_round(), 0.4, 1e-12);
}

TEST(LinkModel, LatencyMatrixRejects) {
  LinkOptions opts;
  opts.latency_matrix = {0.0, 0.1, 0.1};  // not square
  EXPECT_THROW(LinkModel(three_node_matrix(), opts), std::invalid_argument);
  opts.latency_matrix = std::vector<double>(16, 0.0);  // wider than nodes
  EXPECT_THROW(LinkModel(three_node_matrix(), opts), std::invalid_argument);
  opts.latency_matrix = {0.0, -0.1, 0.1, 0.0};  // negative entry
  EXPECT_THROW(LinkModel(three_node_matrix(), opts), std::invalid_argument);
}

TEST(LinkModel, ComputeDelaysTransferStart) {
  LinkModel sim(three_node_matrix());
  sim.start_round();
  sim.compute(0, 2.0);       // node 0 is a straggler
  sim.transfer(0, 2, 1e6);   // starts at 2.0, drains in 0.1
  sim.transfer(1, 2, 1e6);   // starts at 0, drains in 0.1
  EXPECT_NEAR(sim.finish_round(), 2.1, 1e-12);
}

TEST(LinkModel, ComputeOnlyRoundHoldsTheClock) {
  // A straggler that sends nothing still holds the synchronous round open.
  LinkModel sim(three_node_matrix());
  sim.start_round();
  sim.compute(1, 3.0);
  sim.transfer(0, 2, 1e6);  // 0.1 s
  EXPECT_NEAR(sim.finish_round(), 3.0, 1e-12);
}

TEST(LinkModel, ModeledComputeIsDeterministicAndBounded) {
  LinkOptions opts;
  opts.compute_base_seconds = 0.5;
  opts.compute_jitter_seconds = 1.0;
  opts.compute_seed = 7;
  LinkModel a(std::size_t{4}, opts), b(std::size_t{4}, opts);
  for (std::size_t w = 0; w < 4; ++w) {
    const double t = a.modeled_compute(w);
    EXPECT_DOUBLE_EQ(t, b.modeled_compute(w));
    EXPECT_GE(t, 0.5);
    EXPECT_LT(t, 1.5);
  }
  // Per-round jitter: advancing the round changes the draw.
  a.start_round();
  a.finish_round();
  bool any_changed = false;
  for (std::size_t w = 0; w < 4; ++w) {
    any_changed = any_changed || a.modeled_compute(w) != b.modeled_compute(w);
  }
  EXPECT_TRUE(any_changed);
}

TEST(LinkModel, DisabledComputeModelIsZero) {
  LinkModel sim(std::size_t{3});
  EXPECT_DOUBLE_EQ(sim.modeled_compute(0), 0.0);
}

TEST(LinkModel, ProtocolErrors) {
  LinkModel sim(std::size_t{3});
  EXPECT_THROW(sim.transfer(0, 1, 1.0), std::logic_error);  // outside round
  EXPECT_THROW(sim.compute(0, 1.0), std::logic_error);      // outside round
  sim.start_round();
  EXPECT_THROW(sim.start_round(), std::logic_error);  // double open
  EXPECT_THROW(sim.transfer(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.transfer(0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.transfer(0, 1, -5.0), std::invalid_argument);
  EXPECT_THROW(sim.compute(9, 1.0), std::out_of_range);
  EXPECT_THROW(sim.compute(0, -1.0), std::invalid_argument);
  sim.finish_round();
  EXPECT_THROW(sim.finish_round(), std::logic_error);
}

TEST(LinkModel, StatWorkerCountExcludesServer) {
  LinkModel sim(std::size_t{3});
  sim.set_stat_worker_count(2);
  sim.start_round();
  sim.transfer(0, 2, 100.0);  // node 2 plays "server"
  sim.finish_round();
  EXPECT_DOUBLE_EQ(sim.mean_worker_bytes(), 50.0);  // only nodes 0,1 counted
  EXPECT_DOUBLE_EQ(sim.max_worker_bytes(), 100.0);
}

TEST(BestServer, PicksHighestMeanBandwidthNode) {
  BandwidthMatrix b(3);
  b.set(0, 1, 1.0);
  b.set(1, 0, 1.0);
  b.set(0, 2, 1.0);
  b.set(2, 0, 1.0);
  b.set(1, 2, 10.0);
  b.set(2, 1, 10.0);
  // Node 0 mean = 1; node 1 mean = 5.5; node 2 mean = 5.5 → picks 1 (first).
  EXPECT_EQ(best_server_node(b), 1u);
}

TEST(VirtualServer, MirrorsBestNodeLinks) {
  BandwidthMatrix b(3);
  b.set(0, 1, 2.0);
  b.set(1, 0, 2.0);
  b.set(0, 2, 3.0);
  b.set(2, 0, 3.0);
  b.set(1, 2, 8.0);
  b.set(2, 1, 8.0);
  const auto ext = with_virtual_server(b);
  EXPECT_EQ(ext.size(), 4u);
  const auto best = best_server_node(b);
  for (std::size_t j = 0; j < 3; ++j) {
    if (j == best) continue;
    EXPECT_DOUBLE_EQ(ext.get(3, j), b.get(best, j));
  }
  EXPECT_GT(ext.get(3, best), 0.0);
}

}  // namespace
}  // namespace saps::net
