// Finite-difference gradient checks for every layer — the ground truth that
// the training substrate computes correct derivatives.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace saps::nn {
namespace {

/// Scalar objective over the layer output: f = Σ w_i · out_i with fixed
/// random weights; its analytic input/parameter gradients are checked
/// against central differences.
struct GradCheck {
  explicit GradCheck(Layer& layer, std::vector<std::size_t> in_shape,
                     std::uint64_t seed = 1234)
      : layer_(layer), in_shape_(std::move(in_shape)) {
    params_.assign(layer.param_count(), 0.0f);
    grads_.assign(layer.param_count(), 0.0f);
    layer.bind(params_, grads_);
    Rng rng(seed);
    layer.init(rng);
    // Perturb params away from symmetric init values.
    for (auto& p : params_) {
      p += static_cast<float>(rng.next_normal() * 0.05);
    }

    in_ = Tensor(in_shape_);
    for (std::size_t i = 0; i < in_.numel(); ++i) {
      in_[i] = static_cast<float>(rng.next_normal());
    }
    const auto out_shape = layer.output_shape(in_shape_);
    out_ = Tensor(out_shape);
    dout_ = Tensor(out_shape);
    for (std::size_t i = 0; i < dout_.numel(); ++i) {
      dout_[i] = static_cast<float>(rng.next_normal());
    }
  }

  double objective() {
    layer_.forward(in_, out_, /*train=*/true);
    double f = 0.0;
    for (std::size_t i = 0; i < out_.numel(); ++i) {
      f += static_cast<double>(out_[i]) * dout_[i];
    }
    return f;
  }

  /// Returns max relative error between analytic and numeric gradients.
  double check_input_grad(double eps = 1e-3) {
    objective();
    Tensor din(in_.shape());
    std::fill(grads_.begin(), grads_.end(), 0.0f);
    layer_.backward(in_, dout_, din);

    double worst = 0.0;
    for (std::size_t i = 0; i < in_.numel(); ++i) {
      const float saved = in_[i];
      in_[i] = saved + static_cast<float>(eps);
      const double fp = objective();
      in_[i] = saved - static_cast<float>(eps);
      const double fm = objective();
      in_[i] = saved;
      const double numeric = (fp - fm) / (2 * eps);
      const double denom = std::max(1.0, std::abs(numeric));
      worst = std::max(worst, std::abs(numeric - din[i]) / denom);
    }
    return worst;
  }

  double check_param_grad(double eps = 1e-3) {
    objective();
    Tensor din(in_.shape());
    std::fill(grads_.begin(), grads_.end(), 0.0f);
    layer_.backward(in_, dout_, din);

    double worst = 0.0;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      const float saved = params_[i];
      params_[i] = saved + static_cast<float>(eps);
      const double fp = objective();
      params_[i] = saved - static_cast<float>(eps);
      const double fm = objective();
      params_[i] = saved;
      const double numeric = (fp - fm) / (2 * eps);
      const double denom = std::max(1.0, std::abs(numeric));
      worst = std::max(worst, std::abs(numeric - grads_[i]) / denom);
    }
    return worst;
  }

  Layer& layer_;
  std::vector<std::size_t> in_shape_;
  std::vector<float> params_, grads_;
  Tensor in_, out_, dout_;
};

TEST(Linear, GradCheck) {
  Linear layer(5, 4);
  GradCheck gc(layer, {3, 5});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
  EXPECT_LT(gc.check_param_grad(), 2e-2);
}

TEST(Linear, RejectsBadShapes) {
  Linear layer(5, 4);
  EXPECT_THROW(layer.output_shape({3, 6}), std::invalid_argument);
  EXPECT_THROW(Linear(0, 4), std::invalid_argument);
}

TEST(Conv2d, GradCheckNoPad) {
  Conv2d layer(2, 3, 3, 1, 0);
  GradCheck gc(layer, {2, 2, 5, 5});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
  EXPECT_LT(gc.check_param_grad(), 2e-2);
}

TEST(Conv2d, GradCheckPadStride) {
  Conv2d layer(1, 2, 3, 2, 1);
  GradCheck gc(layer, {2, 1, 6, 6});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
  EXPECT_LT(gc.check_param_grad(), 2e-2);
}

TEST(Conv2d, OutputShape) {
  Conv2d layer(3, 16, 3, 1, 1);
  const auto s = layer.output_shape({4, 3, 32, 32});
  EXPECT_EQ(s, (std::vector<std::size_t>{4, 16, 32, 32}));
  Conv2d strided(3, 16, 3, 2, 1);
  const auto s2 = strided.output_shape({4, 3, 32, 32});
  EXPECT_EQ(s2, (std::vector<std::size_t>{4, 16, 16, 16}));
}

TEST(Conv2d, RejectsWrongChannels) {
  Conv2d layer(3, 8, 3);
  EXPECT_THROW(layer.output_shape({1, 4, 8, 8}), std::invalid_argument);
}

TEST(ReLU, GradCheck) {
  ReLU layer;
  GradCheck gc(layer, {4, 10});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
}

TEST(ReLU, ZeroesNegatives) {
  ReLU layer;
  Tensor in({1, 4}, {-1.0f, 2.0f, -3.0f, 4.0f});
  Tensor out({1, 4});
  layer.forward(in, out, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten layer;
  EXPECT_EQ(layer.output_shape({2, 3, 4, 5}),
            (std::vector<std::size_t>{2, 60}));
  Tensor in({1, 2, 2, 1}, {1, 2, 3, 4});
  Tensor out({1, 4});
  layer.forward(in, out, true);
  EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(MaxPool2d, GradCheck) {
  MaxPool2d layer(2);
  GradCheck gc(layer, {2, 2, 4, 4});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
}

TEST(MaxPool2d, SelectsMaximum) {
  MaxPool2d layer(2);
  Tensor in({1, 1, 2, 2}, {1, 5, 2, 3});
  Tensor out({1, 1, 1, 1});
  layer.forward(in, out, true);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(GlobalAvgPool, GradCheck) {
  GlobalAvgPool layer;
  GradCheck gc(layer, {2, 3, 4, 4});
  EXPECT_LT(gc.check_input_grad(), 2e-2);
}

TEST(GlobalAvgPool, Averages) {
  GlobalAvgPool layer;
  Tensor in({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor out({1, 1});
  layer.forward(in, out, true);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(BatchNorm2d, GradCheck) {
  BatchNorm2d layer(3);
  GradCheck gc(layer, {4, 3, 3, 3});
  EXPECT_LT(gc.check_input_grad(), 3e-2);
  EXPECT_LT(gc.check_param_grad(), 3e-2);
}

TEST(BatchNorm2d, NormalizesTrainingBatch) {
  BatchNorm2d layer(1);
  std::vector<float> params(2), grads(2);
  layer.bind(params, grads);
  Rng rng(1);
  layer.init(rng);
  Tensor in({2, 1, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out(in.shape());
  layer.forward(in, out, true);
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) mean += out[i];
  mean /= static_cast<double>(out.numel());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    var += (out[i] - mean) * (out[i] - mean);
  }
  var /= static_cast<double>(out.numel());
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(BatchNorm2d, EvalBeforeTrainUsesRunningStats) {
  BatchNorm2d layer(1);
  std::vector<float> params(2), grads(2);
  layer.bind(params, grads);
  Rng rng(1);
  layer.init(rng);
  Tensor in({1, 1, 1, 2}, {2.0f, 4.0f});
  Tensor out(in.shape());
  layer.forward(in, out, false);  // running mean 0, var 1 → near-identity
  EXPECT_NEAR(out[0], 2.0f, 1e-3);
  EXPECT_NEAR(out[1], 4.0f, 1e-3);
}

TEST(ResidualBlock, GradCheckIdentitySkip) {
  ResidualBlock block(4, 4, 1);
  GradCheck gc(block, {2, 4, 4, 4});
  EXPECT_LT(gc.check_input_grad(), 3e-2);
  EXPECT_LT(gc.check_param_grad(), 3e-2);
}

TEST(ResidualBlock, GradCheckProjectionSkip) {
  ResidualBlock block(2, 4, 2);
  GradCheck gc(block, {2, 2, 6, 6});
  EXPECT_LT(gc.check_input_grad(), 3e-2);
  EXPECT_LT(gc.check_param_grad(), 3e-2);
}

TEST(ResidualBlock, OutputShape) {
  ResidualBlock block(16, 32, 2);
  EXPECT_EQ(block.output_shape({1, 16, 32, 32}),
            (std::vector<std::size_t>{1, 32, 16, 16}));
}

TEST(Layers, BindRejectsWrongSpanSize) {
  Linear layer(3, 2);
  std::vector<float> too_small(3), grads(3);
  EXPECT_THROW(layer.bind(too_small, grads), std::invalid_argument);
}

}  // namespace
}  // namespace saps::nn
