#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"

namespace saps::nn {
namespace {

TEST(Loss, SoftmaxXentKnownValue) {
  // Uniform logits over K classes → loss = log(K).
  Tensor logits({2, 4});
  logits.fill(0.0f);
  const std::vector<std::int32_t> labels = {0, 3};
  Tensor dlogits(logits.shape());
  const double loss = softmax_cross_entropy(logits, labels, dlogits);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
  // Gradient rows sum to 0 (softmax minus one-hot, scaled by 1/B).
  for (std::size_t i = 0; i < 2; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) row += dlogits.at2(i, j);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(Loss, GradMatchesFiniteDifference) {
  Rng rng(3);
  Tensor logits({3, 5});
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.next_normal());
  }
  const std::vector<std::int32_t> labels = {1, 4, 2};
  Tensor dlogits(logits.shape());
  (void)softmax_cross_entropy(logits, labels, dlogits);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double fp = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved - static_cast<float>(eps);
    const double fm = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR((fp - fm) / (2 * eps), dlogits[i], 2e-3);
  }
}

TEST(Loss, RejectsBadLabel) {
  Tensor logits({1, 3});
  const std::vector<std::int32_t> labels = {5};
  Tensor d(logits.shape());
  EXPECT_THROW((void)softmax_cross_entropy(logits, labels, d),
               std::invalid_argument);
}

TEST(Loss, CorrectCount) {
  Tensor logits({2, 3}, {0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f});
  const std::vector<std::int32_t> labels = {1, 2};
  EXPECT_EQ(correct_count(logits, labels), 1u);
}

TEST(Model, DeterministicInitialization) {
  auto a = make_mlp({10}, {16}, 3, 99);
  auto b = make_mlp({10}, {16}, 3, 99);
  ASSERT_EQ(a.param_count(), b.param_count());
  const auto pa = a.parameters(), pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Model, DifferentSeedsDiffer) {
  auto a = make_mlp({10}, {16}, 3, 1);
  auto b = make_mlp({10}, {16}, 3, 2);
  double diff = 0.0;
  const auto pa = a.parameters(), pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    diff += std::abs(pa[i] - pb[i]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(Model, ParamCounts) {
  // logreg on 784 → 10: 784*10 + 10.
  auto lr = make_logreg({784}, 10, 1);
  EXPECT_EQ(lr.param_count(), 7850u);
  // ResNet-20 ≈ 272k params (paper reports 269,722 for its variant).
  auto rn = make_resnet20(1);
  EXPECT_GT(rn.param_count(), 260000u);
  EXPECT_LT(rn.param_count(), 285000u);
  // MNIST-CNN with hidden=2048 lands near the paper's 6.65M.
  auto mc = make_mnist_cnn(1);
  EXPECT_GT(mc.param_count(), 6000000u);
  EXPECT_LT(mc.param_count(), 7000000u);
}

TEST(Model, MlpLearnsBlobs) {
  const auto train = data::make_blobs(512, 8, 3, 0.3, 42);
  auto model = make_mlp({8}, {32}, 3, 7);
  Sgd sgd({.lr = 0.1});

  Tensor x;
  std::vector<std::int32_t> y;
  data::BatchSampler sampler(train, 32, 5);
  for (int step = 0; step < 300; ++step) {
    sampler.next(x, y);
    model.zero_grad();
    model.train_batch(x, y);
    sgd.step(model.parameters(), model.gradients());
  }

  std::vector<std::size_t> idx(train.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Tensor all;
  std::vector<std::int32_t> labels;
  train.gather(idx, all, labels);
  const auto r = model.evaluate_batch(all, labels);
  EXPECT_GT(static_cast<double>(r.correct) / static_cast<double>(train.size()),
            0.95);
}

TEST(Model, TrainReducesLoss) {
  const auto train = data::make_blobs(256, 6, 2, 0.4, 11);
  auto model = make_logreg({6}, 2, 3);
  Sgd sgd({.lr = 0.2});
  Tensor x;
  std::vector<std::int32_t> y;
  data::BatchSampler sampler(train, 64, 9);
  sampler.next(x, y);
  model.zero_grad();
  const double first = model.train_batch(x, y);
  sgd.step(model.parameters(), model.gradients());
  double last = first;
  for (int i = 0; i < 50; ++i) {
    sampler.next(x, y);
    model.zero_grad();
    last = model.train_batch(x, y);
    sgd.step(model.parameters(), model.gradients());
  }
  EXPECT_LT(last, first);
}

TEST(Model, RejectsBadInput) {
  auto model = make_logreg({6}, 2, 3);
  Tensor bad({2, 7});
  std::vector<std::int32_t> y = {0, 1};
  EXPECT_THROW(model.evaluate_batch(bad, y), std::invalid_argument);
}

TEST(Model, TinyModelsBuild) {
  auto cnn = make_tiny_cnn(1, 12, 10, 5);
  EXPECT_GT(cnn.param_count(), 1000u);
  auto rn = make_tiny_resnet(1, 16, 10, 5);
  EXPECT_GT(rn.param_count(), 1000u);
  Tensor x({2, 1, 12, 12});
  std::vector<std::int32_t> y = {0, 1};
  EXPECT_NO_THROW(cnn.evaluate_batch(x, y));
}

TEST(Sgd, MilestoneSchedule) {
  Sgd sgd({.lr = 1.0, .decay_epochs = {10, 20}, .decay_factor = 0.1});
  EXPECT_DOUBLE_EQ(sgd.lr_at_epoch(0), 1.0);
  EXPECT_DOUBLE_EQ(sgd.lr_at_epoch(9), 1.0);
  EXPECT_DOUBLE_EQ(sgd.lr_at_epoch(10), 0.1);
  EXPECT_NEAR(sgd.lr_at_epoch(25), 0.01, 1e-12);
}

TEST(Sgd, PlainStep) {
  Sgd sgd({.lr = 0.5});
  std::vector<float> p = {1.0f}, g = {2.0f};
  sgd.step(p, g);
  EXPECT_FLOAT_EQ(p[0], 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd({.lr = 1.0, .momentum = 0.5});
  std::vector<float> p = {0.0f}, g = {1.0f};
  sgd.step(p, g);  // v=1, p=-1
  sgd.step(p, g);  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(p[0], -2.5f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Sgd sgd({.lr = 0.1, .weight_decay = 1.0});
  std::vector<float> p = {1.0f}, g = {0.0f};
  sgd.step(p, g);
  EXPECT_FLOAT_EQ(p[0], 0.9f);
}

TEST(Sgd, RejectsBadConfig) {
  EXPECT_THROW(Sgd({.lr = 0.0}), std::invalid_argument);
  EXPECT_THROW(Sgd({.lr = 0.1, .momentum = 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace saps::nn
