// Checkpointing and the MNIST IDX loader (including a synthetic IDX file
// written on the fly, so the loader's parsing is tested without the real
// dataset being present).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/mnist_loader.hpp"
#include "nn/checkpoint.hpp"
#include "nn/models.hpp"

namespace saps {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("saps_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

using CheckpointTest = TempDir;

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  auto model = nn::make_mlp({8}, {16}, 4, 77);
  const auto path = (dir_ / "model.ckpt").string();
  nn::save_checkpoint(path, model.parameters());
  const auto loaded = nn::load_checkpoint(path);
  ASSERT_EQ(loaded.size(), model.param_count());
  const auto p = model.parameters();
  for (std::size_t i = 0; i < loaded.size(); ++i) EXPECT_EQ(loaded[i], p[i]);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW(nn::load_checkpoint((dir_ / "nope.ckpt").string()),
               std::runtime_error);
}

TEST_F(CheckpointTest, CorruptMagicThrows) {
  const auto path = (dir_ / "bad.ckpt").string();
  std::ofstream out(path, std::ios::binary);
  out << "NOTACKPT0000";
  out.close();
  EXPECT_THROW(nn::load_checkpoint(path), std::runtime_error);
}

TEST_F(CheckpointTest, TruncatedPayloadThrows) {
  auto model = nn::make_logreg({4}, 2, 1);
  const auto path = (dir_ / "trunc.ckpt").string();
  nn::save_checkpoint(path, model.parameters());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 6);
  EXPECT_THROW(nn::load_checkpoint(path), std::runtime_error);
}

using MnistLoaderTest = TempDir;

namespace {
void write_be32(std::ofstream& out, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                         static_cast<char>(v >> 8), static_cast<char>(v)};
  out.write(bytes, 4);
}

/// Writes a tiny but well-formed IDX pair: `n` 4x3 images with label i%10.
void write_idx_pair(const std::filesystem::path& images,
                    const std::filesystem::path& labels, std::uint32_t n) {
  std::ofstream img(images, std::ios::binary);
  write_be32(img, 0x803);
  write_be32(img, n);
  write_be32(img, 4);
  write_be32(img, 3);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int p = 0; p < 12; ++p) {
      img.put(static_cast<char>((i + static_cast<std::uint32_t>(p)) % 256));
    }
  }
  std::ofstream lab(labels, std::ios::binary);
  write_be32(lab, 0x801);
  write_be32(lab, n);
  for (std::uint32_t i = 0; i < n; ++i) lab.put(static_cast<char>(i % 10));
}
}  // namespace

TEST_F(MnistLoaderTest, MissingFilesReturnNullopt) {
  EXPECT_FALSE(data::load_mnist_train(dir_.string()).has_value());
  EXPECT_FALSE(
      data::load_mnist_idx((dir_ / "a").string(), (dir_ / "b").string())
          .has_value());
}

TEST_F(MnistLoaderTest, ParsesWellFormedIdx) {
  const auto img = dir_ / "img", lab = dir_ / "lab";
  write_idx_pair(img, lab, 20);
  const auto d = data::load_mnist_idx(img.string(), lab.string());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 20u);
  EXPECT_EQ(d->sample_shape(), (std::vector<std::size_t>{1, 4, 3}));
  EXPECT_EQ(d->label(13), 3);
  // Pixel scaling to [0,1]: first image, first pixel is 0/255.
  EXPECT_FLOAT_EQ(d->sample(0)[0], 0.0f);
  EXPECT_NEAR(d->sample(1)[0], 1.0f / 255.0f, 1e-6);
}

TEST_F(MnistLoaderTest, BadMagicThrows) {
  const auto img = dir_ / "img", lab = dir_ / "lab";
  write_idx_pair(img, lab, 4);
  // Corrupt the image magic.
  std::fstream f(img, std::ios::binary | std::ios::in | std::ios::out);
  f.put(0x7F);
  f.close();
  EXPECT_THROW(data::load_mnist_idx(img.string(), lab.string()),
               std::runtime_error);
}

TEST_F(MnistLoaderTest, CountMismatchThrows) {
  const auto img = dir_ / "img", lab = dir_ / "lab";
  write_idx_pair(img, lab, 4);
  // Rewrite labels with a different count.
  std::ofstream relab(lab, std::ios::binary | std::ios::trunc);
  write_be32(relab, 0x801);
  write_be32(relab, 5);
  for (int i = 0; i < 5; ++i) relab.put(1);
  relab.close();
  EXPECT_THROW(data::load_mnist_idx(img.string(), lab.string()),
               std::runtime_error);
}

TEST_F(MnistLoaderTest, TruncatedImagesThrow) {
  const auto img = dir_ / "img", lab = dir_ / "lab";
  write_idx_pair(img, lab, 8);
  std::filesystem::resize_file(img, std::filesystem::file_size(img) - 5);
  EXPECT_THROW(data::load_mnist_idx(img.string(), lab.string()),
               std::runtime_error);
}

// Exercises the loader against the real dataset when present (SAPS_MNIST_DIR
// or ./data/mnist, the same default as examples/train_real_mnist); skips
// cleanly otherwise so CI machines without the data stay green.
TEST(RealMnist, LoadsCanonicalFilesWhenPresent) {
  const char* env = std::getenv("SAPS_MNIST_DIR");
  const std::string dir = env != nullptr ? env : "data/mnist";
  const auto train = data::load_mnist_train(dir);
  if (!train.has_value()) {
    GTEST_SKIP() << "real MNIST not found under '" << dir
                 << "' (set SAPS_MNIST_DIR to enable)";
  }
  const auto test = data::load_mnist_test(dir);
  ASSERT_TRUE(test.has_value());
  EXPECT_EQ(train->size(), 60000u);
  EXPECT_EQ(test->size(), 10000u);
  EXPECT_EQ(train->sample_shape(), (std::vector<std::size_t>{1, 28, 28}));
}

}  // namespace
}  // namespace saps
