#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "compress/quantize.hpp"
#include "tensor/ops.hpp"

namespace saps::compress {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float() - 0.5f;
  return v;
}

TEST(Qsgd, DecodePreservesSignsAndZeros) {
  Rng rng(1);
  const std::vector<float> x = {1.0f, -2.0f, 0.0f, 4.0f};
  const auto e = qsgd_encode(x, 8, rng);
  const auto back = qsgd_decode(e);
  ASSERT_EQ(back.size(), x.size());
  EXPECT_FLOAT_EQ(back[2], 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0) {
      EXPECT_GE(back[i], 0.0f);
    }
    if (x[i] < 0) {
      EXPECT_LE(back[i], 0.0f);
    }
  }
}

TEST(Qsgd, UnbiasedInExpectation) {
  Rng rng(7);
  const std::vector<float> x = {0.3f, -0.7f, 0.05f, 1.1f, -0.01f};
  std::vector<double> mean(x.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto back = qsgd_decode(qsgd_encode(x, 4, rng));
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += back[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, x[i], 0.02) << "coord " << i;
  }
}

TEST(Qsgd, ZeroVectorStaysZero) {
  Rng rng(3);
  const std::vector<float> x(16, 0.0f);
  const auto back = qsgd_decode(qsgd_encode(x, 4, rng));
  for (const auto v : back) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Qsgd, WireBytesBelowDense) {
  Rng rng(5);
  std::vector<float> x(10000, 1.0f);
  const auto e = qsgd_encode(x, 4, rng);  // 9 symbols → 4 bits per coord
  EXPECT_LT(e.wire_bytes(), 4.0 * 10000 / 4);  // ≥ 8x smaller than fp32
}

TEST(Qsgd, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(qsgd_encode({}, 4, rng), std::invalid_argument);
  std::vector<float> x = {1.0f};
  EXPECT_THROW(qsgd_encode(x, 0, rng), std::invalid_argument);
}

TEST(Qsgd, IntoOverloadsMatchReturningOverloads) {
  // Same rng seed → same draw stream → identical encode; decode is pure.
  const auto x = random_vec(1003, 21);  // odd size exercises the SIMD tails
  Rng r1(77), r2(77);
  const auto want = qsgd_encode(x, 8, r1);
  QsgdEncoded got;
  qsgd_encode(x, 8, r2, got);
  EXPECT_EQ(got.norm, want.norm);
  EXPECT_EQ(got.levels, want.levels);
  EXPECT_EQ(got.quantized, want.quantized);
  std::vector<float> back;
  qsgd_decode(got, back);
  EXPECT_EQ(back, qsgd_decode(want));
}

TEST(Qsgd, BackendsProduceBitIdenticalEncodeAndDecode) {
  if (!ops::gemm_backend_available(ops::GemmBackend::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  for (const std::size_t n : {4u, 17u, 1024u, 4099u}) {
    const auto x = random_vec(n, n);
    for (const std::uint8_t levels : {1, 4, 127}) {
      Rng r1(5), r2(5);
      ops::set_gemm_backend(ops::GemmBackend::kAvx2);
      const auto a = qsgd_encode(x, levels, r1);
      const auto da = qsgd_decode(a);
      ops::set_gemm_backend(ops::GemmBackend::kPortable);
      const auto p = qsgd_encode(x, levels, r2);
      const auto dp = qsgd_decode(p);
      ops::set_gemm_backend(ops::GemmBackend::kAuto);
      EXPECT_EQ(a.norm, p.norm) << "n=" << n;
      ASSERT_EQ(a.quantized, p.quantized)
          << "n=" << n << " levels=" << int(levels);
      ASSERT_EQ(da, dp) << "n=" << n << " levels=" << int(levels);
    }
  }
}

TEST(PackedLevels, RoundTripsAndMatchesNaivePacker) {
  for (const std::size_t n : {1u, 7u, 16u, 137u, 4096u}) {
    for (const std::uint8_t levels : {1, 3, 4, 15, 127}) {
      const std::size_t bits = level_bits(levels);
      Rng rng(n * 31 + levels);
      std::vector<std::int8_t> q(n);
      for (auto& v : q) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng() % (2 * levels + 1)) - levels);
      }
      // Naive LSB-first reference stream.
      std::vector<std::uint8_t> want;
      std::uint32_t acc = 0;
      std::size_t filled = 0;
      for (const std::int8_t v : q) {
        acc |= static_cast<std::uint32_t>(v + levels) << filled;
        filled += bits;
        while (filled >= 8) {
          want.push_back(static_cast<std::uint8_t>(acc & 0xFF));
          acc >>= 8;
          filled -= 8;
        }
      }
      if (filled > 0) want.push_back(static_cast<std::uint8_t>(acc & 0xFF));

      std::vector<std::uint8_t> got;
      pack_levels(q, levels, got);
      ASSERT_EQ(got, want) << "n=" << n << " levels=" << int(levels);
      EXPECT_EQ(got.size(), packed_bytes(n, levels));

      std::vector<std::int8_t> back(n);
      unpack_levels(got, levels, back);
      ASSERT_EQ(back, q) << "n=" << n << " levels=" << int(levels);
    }
  }
}

TEST(PackedLevels, BackendsProduceByteIdenticalStreams) {
  if (!ops::gemm_backend_available(ops::GemmBackend::kAvx2)) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  const std::uint8_t levels = 7;  // 4 bits
  Rng rng(97);
  std::vector<std::int8_t> q(2053);
  for (auto& v : q) {
    v = static_cast<std::int8_t>(static_cast<int>(rng() % 15) - 7);
  }
  std::vector<std::uint8_t> sa, sp;
  ops::set_gemm_backend(ops::GemmBackend::kAvx2);
  pack_levels(q, levels, sa);
  ops::set_gemm_backend(ops::GemmBackend::kPortable);
  pack_levels(q, levels, sp);
  ASSERT_EQ(sa, sp);
  std::vector<std::int8_t> ba(q.size()), bp(q.size());
  unpack_levels(sp, levels, bp);
  ops::set_gemm_backend(ops::GemmBackend::kAvx2);
  unpack_levels(sa, levels, ba);
  ops::set_gemm_backend(ops::GemmBackend::kAuto);
  EXPECT_EQ(ba, q);
  EXPECT_EQ(bp, q);
}

TEST(PackedLevels, NineBitLevelsUseThePortablePathCorrectly) {
  // levels >= 128 → 9 bits per code: beyond the SIMD byte-per-code paths,
  // must still round-trip through the u64 accumulator.
  const std::uint8_t levels = 200;
  EXPECT_EQ(level_bits(levels), 9u);
  std::vector<std::int8_t> q = {-128, 127, 0, -1, 1, 100, -100};
  std::vector<std::uint8_t> bytes;
  pack_levels(q, levels, bytes);
  EXPECT_EQ(bytes.size(), packed_bytes(q.size(), levels));
  std::vector<std::int8_t> back(q.size());
  unpack_levels(bytes, levels, back);
  EXPECT_EQ(back, q);
}

TEST(PackedLevels, AppendsToExistingBytes) {
  const std::vector<std::int8_t> q = {1, -1, 0, 2};
  std::vector<std::uint8_t> bytes = {0xAB, 0xCD};
  pack_levels(q, 2, bytes);
  ASSERT_EQ(bytes.size(), 2 + packed_bytes(q.size(), 2));
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0xCD);
  std::vector<std::int8_t> back(q.size());
  unpack_levels(std::span<const std::uint8_t>(bytes).subspan(2), 2, back);
  EXPECT_EQ(back, q);
}

TEST(PackedLevels, RejectsBadInput) {
  const std::vector<std::int8_t> over = {5};
  std::vector<std::uint8_t> bytes;
  EXPECT_THROW(pack_levels(over, 4, bytes), std::invalid_argument);

  // 17 codes force both the SIMD 16-wide block and the scalar tail to
  // validate.
  std::vector<std::int8_t> many(17, 0);
  many[3] = 9;
  bytes.clear();
  EXPECT_THROW(pack_levels(many, 4, bytes), std::invalid_argument);

  std::vector<std::int8_t> out(4);
  const std::vector<std::uint8_t> short_stream = {0x00};
  EXPECT_THROW(unpack_levels(short_stream, 4, out), std::out_of_range);

  // An out-of-range CODE (offset > 2s) must be rejected on unpack: 4 bits
  // per code at levels=4 admits codes 9..15.
  const std::vector<std::uint8_t> bad_code = {0xFF, 0xFF};
  std::vector<std::int8_t> out2(2);
  EXPECT_THROW(unpack_levels(bad_code, 4, out2), std::invalid_argument);
}

TEST(TernGrad, ValuesAreTernary) {
  Rng rng(9);
  std::vector<float> x = {0.5f, -1.5f, 0.0f, 3.0f, -0.1f};
  const auto e = terngrad_encode(x, rng);
  EXPECT_FLOAT_EQ(e.scale, 3.0f);
  for (const auto s : e.signs) {
    EXPECT_TRUE(s == -1 || s == 0 || s == 1);
  }
  const auto back = terngrad_decode(e);
  for (const auto v : back) {
    EXPECT_TRUE(v == -3.0f || v == 0.0f || v == 3.0f);
  }
}

TEST(TernGrad, UnbiasedInExpectation) {
  Rng rng(11);
  const std::vector<float> x = {0.5f, -1.0f, 0.25f, 2.0f};
  std::vector<double> mean(x.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto back = terngrad_decode(terngrad_encode(x, rng));
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += back[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, x[i], 0.05) << "coord " << i;
  }
}

TEST(TernGrad, CompressionIsAtMost16x) {
  // 2 bits per coordinate → 16x vs fp32 (the paper's point: quantization
  // caps out near 32x, sparsification reaches 100-1000x).
  Rng rng(13);
  std::vector<float> x(8000, 0.5f);
  const auto e = terngrad_encode(x, rng);
  const double dense = 4.0 * 8000;
  EXPECT_NEAR(dense / e.wire_bytes(), 16.0, 0.1);
}

}  // namespace
}  // namespace saps::compress
