#include <gtest/gtest.h>

#include <cmath>

#include "compress/quantize.hpp"

namespace saps::compress {
namespace {

TEST(Qsgd, DecodePreservesSignsAndZeros) {
  Rng rng(1);
  const std::vector<float> x = {1.0f, -2.0f, 0.0f, 4.0f};
  const auto e = qsgd_encode(x, 8, rng);
  const auto back = qsgd_decode(e);
  ASSERT_EQ(back.size(), x.size());
  EXPECT_FLOAT_EQ(back[2], 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0) {
      EXPECT_GE(back[i], 0.0f);
    }
    if (x[i] < 0) {
      EXPECT_LE(back[i], 0.0f);
    }
  }
}

TEST(Qsgd, UnbiasedInExpectation) {
  Rng rng(7);
  const std::vector<float> x = {0.3f, -0.7f, 0.05f, 1.1f, -0.01f};
  std::vector<double> mean(x.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto back = qsgd_decode(qsgd_encode(x, 4, rng));
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += back[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, x[i], 0.02) << "coord " << i;
  }
}

TEST(Qsgd, ZeroVectorStaysZero) {
  Rng rng(3);
  const std::vector<float> x(16, 0.0f);
  const auto back = qsgd_decode(qsgd_encode(x, 4, rng));
  for (const auto v : back) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Qsgd, WireBytesBelowDense) {
  Rng rng(5);
  std::vector<float> x(10000, 1.0f);
  const auto e = qsgd_encode(x, 4, rng);  // 9 symbols → 4 bits per coord
  EXPECT_LT(e.wire_bytes(), 4.0 * 10000 / 4);  // ≥ 8x smaller than fp32
}

TEST(Qsgd, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(qsgd_encode({}, 4, rng), std::invalid_argument);
  std::vector<float> x = {1.0f};
  EXPECT_THROW(qsgd_encode(x, 0, rng), std::invalid_argument);
}

TEST(TernGrad, ValuesAreTernary) {
  Rng rng(9);
  std::vector<float> x = {0.5f, -1.5f, 0.0f, 3.0f, -0.1f};
  const auto e = terngrad_encode(x, rng);
  EXPECT_FLOAT_EQ(e.scale, 3.0f);
  for (const auto s : e.signs) {
    EXPECT_TRUE(s == -1 || s == 0 || s == 1);
  }
  const auto back = terngrad_decode(e);
  for (const auto v : back) {
    EXPECT_TRUE(v == -3.0f || v == 0.0f || v == 3.0f);
  }
}

TEST(TernGrad, UnbiasedInExpectation) {
  Rng rng(11);
  const std::vector<float> x = {0.5f, -1.0f, 0.25f, 2.0f};
  std::vector<double> mean(x.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto back = terngrad_decode(terngrad_encode(x, rng));
    for (std::size_t i = 0; i < x.size(); ++i) mean[i] += back[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(mean[i] / trials, x[i], 0.05) << "coord " << i;
  }
}

TEST(TernGrad, CompressionIsAtMost16x) {
  // 2 bits per coordinate → 16x vs fp32 (the paper's point: quantization
  // caps out near 32x, sparsification reaches 100-1000x).
  Rng rng(13);
  std::vector<float> x(8000, 0.5f);
  const auto e = terngrad_encode(x, rng);
  const double dense = 4.0 * 8000;
  EXPECT_NEAR(dense / e.wire_bytes(), 16.0, 0.1);
}

}  // namespace
}  // namespace saps::compress
