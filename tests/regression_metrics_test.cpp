// Message-plane regression gate: default (zero-latency, uniform-compute)
// runs of all seven algorithms must reproduce the PRE-REFACTOR accounting
// bit-for-bit.  The golden numbers below were captured from the seed tree
// (hand-computed byte constants fed straight into the old NetworkSim) on the
// exact workload built here; the fabric path — encoded wire messages,
// wire_bytes() charging, staged transfer application, event-driven link
// model — must land on identical traffic, communication time, accuracy and
// loss.  A nonzero-latency configuration must strictly lengthen
// comm_seconds, and the control-plane ledger must match the coordinator's.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "algos/d_psgd.hpp"
#include "algos/fedavg.hpp"
#include "algos/psgd.hpp"
#include "algos/qsgd_psgd.hpp"
#include "algos/topk_psgd.hpp"
#include "core/saps.hpp"
#include "net/bandwidth.hpp"
#include "nn/models.hpp"
#include "scenario/runner.hpp"
#include "test_util.hpp"

namespace saps {
namespace {

struct Golden {
  double accuracy;       // final eval accuracy
  double loss;           // final eval loss
  double mean_bytes;     // LinkModel::mean_worker_bytes at end of run
  double worker1_bytes;  // LinkModel::worker_bytes(1)
  double seconds;        // LinkModel::total_seconds
};

// Captured from the pre-refactor tree (PR 2 head) with the workload below;
// hexfloat so the comparison is bit-exact.  The LOSS column was recaptured
// exactly once for PR 4's blocked-FMA kernel layer (tensor/gemm.cpp): fused
// multiply-add rounds each GEMM element once instead of twice, moving the
// final losses by a few ULPs.  Accuracy, per-worker traffic and round time
// are bit-identical to the pre-refactor tree — pinning that the kernel and
// pre-encoded ring changes altered no accounting.
const std::map<std::string, Golden> kGoldens = {
    {"psgd", {0x1.f333333333333p-1, 0x1.bada57a990dbap-2, 0x1.09p+15,
              0x1.09p+15, 0x1.14f79f73fa38bp-6}},
    {"topk", {0x1.fp-1, 0x1.d720aca9df88ep-2, 0x1.68p+14, 0x1.68p+14,
              0x1.7841e71b239ecp-7}},
    {"qsgd", {0x1.f333333333333p-1, 0x1.acc8b35fa362bp-2, 0x1.a04p+13,
              0x1.a04p+13, 0x1.b30c3337612f9p-8}},
    {"fedavg", {0x1.f333333333333p-1, 0x1.b1b023923b73bp-2, 0x1.a8p+10,
                0x1.a8p+10, 0x1.93cc6ee37323ap-11}},
    {"sfedavg", {0x1.e333333333333p-1, 0x1.0d7c73946811cp-2, 0x1.08p+10,
                 0x1.0ep+10, 0x1.f7dd4f96a727p-12}},
    {"dpsgd", {0x1.f333333333333p-1, 0x1.bab769e097035p-2, 0x1.09p+16,
               0x1.09p+16, 0x1.14f79f73fa38bp-6}},
    {"dcd", {0x1.f333333333333p-1, 0x1.ba77cbdbdea18p-2, 0x1.13p+15,
             0x1.13p+15, 0x1.1f6b3b34bb362p-7}},
    {"saps", {0x1.f333333333333p-1, 0x1.bd9783f1b100dp-2, 0x1.1acp+12,
              0x1.0d8p+12, 0x1.280e5129e7245p-9}},
};

sim::Engine make_engine(double latency = 0.0, double jitter = 0.0) {
  sim::SimConfig cfg;
  cfg.workers = 4;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.seed = 42;
  cfg.link_latency_seconds = latency;
  cfg.compute_jitter_seconds = jitter;
  auto bw = net::random_uniform_bandwidth(cfg.workers, 123);
  // Thread-count invariance is enforced elsewhere; honoring SAPS_THREADS
  // here runs the whole suite over the pool in the sanitizer CI pass.
  return test_util::blob_engine(cfg, test_util::BlobSpec{}, std::move(bw));
}

std::unique_ptr<algos::Algorithm> make_algorithm(const std::string& key) {
  if (key == "psgd") return std::make_unique<algos::PsgdAllReduce>();
  if (key == "topk") {
    return std::make_unique<algos::TopkPsgd>(
        algos::TopkConfig{.compression = 10.0});
  }
  if (key == "qsgd") {
    return std::make_unique<algos::QsgdPsgd>(algos::QsgdConfig{.levels = 4});
  }
  if (key == "fedavg") {
    return std::make_unique<algos::FedAvg>(
        algos::FedAvgConfig{.fraction = 0.5, .local_epochs = 1});
  }
  if (key == "sfedavg") {
    return std::make_unique<algos::FedAvg>(algos::FedAvgConfig{
        .fraction = 0.5, .local_epochs = 1, .upload_compression = 5.0});
  }
  if (key == "dpsgd") return std::make_unique<algos::DPsgd>();
  if (key == "dcd") {
    return std::make_unique<algos::DcdPsgd>(
        algos::DcdConfig{.compression = 4.0});
  }
  if (key == "saps") {
    return std::make_unique<core::SapsPsgd>(
        core::SapsConfig{.compression = 10.0});
  }
  throw std::invalid_argument("unknown key " + key);
}

TEST(MessagePlaneRegression, AllSevenAlgorithmsMatchSeedAccountingBitForBit) {
  for (const auto& [key, golden] : kGoldens) {
    SCOPED_TRACE(key);
    auto engine = make_engine();
    const auto algo = make_algorithm(key);
    const auto result = algo->run(engine);
    const auto& link = engine.network();
    EXPECT_EQ(result.final().accuracy, golden.accuracy);
    EXPECT_EQ(result.final().loss, golden.loss);
    EXPECT_EQ(link.mean_worker_bytes(), golden.mean_bytes);
    EXPECT_EQ(link.worker_bytes(1), golden.worker1_bytes);
    EXPECT_EQ(link.total_seconds(), golden.seconds);
  }
}

// The declarative path must construct the EXACT experiment the direct path
// does: a spec text naming the same workload, engine knobs and algorithm
// parameters lands on the seed-captured goldens bit for bit.  This pins the
// whole Scenario API stack — registry factories, spec parsing, Runner
// engine construction — to the pre-refactor accounting (and is what makes
// bench/specs/* reproductions trustworthy).
TEST(MessagePlaneRegression, SpecDrivenRunsMatchSeedGoldensBitForBit) {
  for (const auto& [key, golden] : kGoldens) {
    SCOPED_TRACE(key);
    auto spec = scenario::parse_spec_text(
        "workload=blob\n"
        "algorithm=" + key + "\n"
        "workers=4\n"
        "epochs=2\n"
        "batch=16\n"
        "lr=0.1\n"
        "seed=42\n"
        "bandwidth=uniform\n"
        "bandwidth-seed=123\n"
        "topk-c=10\n"
        "sfedavg-c=5\n"
        "dcd-c=4\n"
        "saps-c=10\n"
        "qsgd-levels=4\n");
    spec.threads = test_util::env_threads();
    scenario::Runner runner(spec);
    const auto record = runner.run(key);
    EXPECT_EQ(record.result.final().accuracy, golden.accuracy);
    EXPECT_EQ(record.result.final().loss, golden.loss);
    // traffic_mb is mean_worker_bytes / 1e6; compare in the same unit so
    // the check stays bit-exact.
    EXPECT_EQ(record.traffic_mb, golden.mean_bytes / 1e6);
    EXPECT_EQ(record.comm_seconds, golden.seconds);
  }
}

TEST(MessagePlaneRegression, NonzeroLatencyStrictlyLengthensCommTime) {
  for (const auto& key : {"psgd", "saps", "fedavg"}) {
    SCOPED_TRACE(key);
    auto engine = make_engine(/*latency=*/1e-3);
    const auto result = make_algorithm(key)->run(engine);
    EXPECT_GT(engine.network().total_seconds(), kGoldens.at(key).seconds);
    // Traffic and training are untouched by the timing model.
    EXPECT_EQ(engine.network().mean_worker_bytes(),
              kGoldens.at(key).mean_bytes);
    EXPECT_EQ(result.final().accuracy, kGoldens.at(key).accuracy);
  }
}

TEST(MessagePlaneRegression, ComputeJitterStrictlyLengthensCommTime) {
  auto engine = make_engine(/*latency=*/0.0, /*jitter=*/0.01);
  const auto result = make_algorithm("saps")->run(engine);
  EXPECT_GT(engine.network().total_seconds(), kGoldens.at("saps").seconds);
  EXPECT_EQ(result.final().accuracy, kGoldens.at("saps").accuracy);
}

TEST(MessagePlaneRegression, FabricControlLedgerMatchesCoordinator) {
  auto engine = make_engine();
  core::SapsPsgd algo({.compression = 10.0});
  (void)algo.run(engine);
  EXPECT_DOUBLE_EQ(engine.fabric().control_bytes(), algo.control_bytes());
  EXPECT_GT(algo.control_bytes(), 0.0);
}

}  // namespace
}  // namespace saps
