// Attack-aware reputation scoring (core/reputation.hpp) and the
// saps-strategy=reputation selection path it feeds.
//
// Pinned here:
//  - anomaly_score algebra: honest ~0, sign-flip ~2, scale deviations as
//    |log norm ratio|, degenerate inputs clamp to 0;
//  - the observation-gated EMA fold: fixed order, cross-lane call order
//    irrelevant, unobserved peers hold their score;
//  - detection metrics: the FedAvg server monitor flags exactly the
//    scheduled attackers (precision = recall = 1 on the blob workload);
//  - determinism: a reputation-defended SAPS run is bit-identical across
//    thread counts {0, 1, 4} and across reruns, and a population-scale
//    cohort run (reputation matching, no bandwidth matrix) is bit-identical
//    across reruns.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "algos/fedavg.hpp"
#include "core/reputation.hpp"
#include "core/saps.hpp"
#include "net/bandwidth.hpp"
#include "nn/models.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace saps {
namespace {

constexpr std::size_t kThreadCounts[] = {0, 1, 4};

// --- anomaly_score -----------------------------------------------------------

TEST(AnomalyScore, HonestUpdatesScoreNearZeroAndAttacksScoreHigh) {
  const std::vector<float> f{1.0f, -2.0f, 0.5f, 3.0f};
  EXPECT_EQ(core::anomaly_score(f, f), 0.0);

  // A sign flip keeps the norm (no norm term) and inverts the cosine: 2.
  std::vector<float> flipped = f;
  for (auto& x : flipped) x = -x;
  EXPECT_NEAR(core::anomaly_score(flipped, f), 2.0, 1e-12);

  // A pure rescale keeps the cosine and contributes |log s|.
  std::vector<float> scaled = f;
  for (auto& x : scaled) x *= 10.0f;
  EXPECT_NEAR(core::anomaly_score(scaled, f), std::log(10.0), 1e-6);

  // Degenerate inputs never throw and never accuse: empty, mismatched, and
  // zero-norm payloads all score 0.
  EXPECT_EQ(core::anomaly_score({}, f), 0.0);
  EXPECT_EQ(core::anomaly_score(f, std::vector<float>{1.0f}), 0.0);
  EXPECT_EQ(core::anomaly_score(std::vector<float>(4, 0.0f), f), 0.0);
}

// --- ReputationMonitor -------------------------------------------------------

TEST(ReputationMonitor, ValidatesConfigAndObserverRange) {
  EXPECT_THROW(core::ReputationMonitor(4, {.decay = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(core::ReputationMonitor(4, {.decay = -0.1}),
               std::invalid_argument);

  core::ReputationMonitor monitor(4);
  const std::vector<float> v{1.0f, 2.0f};
  EXPECT_NO_THROW(monitor.observe(4, 0, v, v));  // lane 4 = the server
  EXPECT_THROW(monitor.observe(5, 0, v, v), std::out_of_range);
  EXPECT_THROW(monitor.observe(0, 4, v, v), std::out_of_range);
  EXPECT_THROW((void)monitor.score(4), std::out_of_range);
}

TEST(ReputationMonitor, FoldIsIndependentOfStagingCallOrder) {
  const std::vector<float> f{1.0f, -2.0f, 0.5f, 3.0f};
  std::vector<float> flipped = f;
  for (auto& x : flipped) x = -x;
  std::vector<float> noisy = f;
  noisy[0] += 0.25f;

  core::ReputationMonitor a(4, {.decay = 0.5});
  a.observe(0, 2, flipped, f);
  a.observe(1, 2, noisy, f);
  a.observe(3, 1, noisy, f);
  a.end_round();

  // Same observations staged in reverse cross-lane order: the fold is by
  // lane index, so the scores are bit-identical.
  core::ReputationMonitor b(4, {.decay = 0.5});
  b.observe(3, 1, noisy, f);
  b.observe(1, 2, noisy, f);
  b.observe(0, 2, flipped, f);
  b.end_round();

  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(a.score(w), b.score(w)) << "worker " << w;
  }
}

TEST(ReputationMonitor, ObservationGatedEmaHoldsUnobservedScores) {
  const std::vector<float> f{1.0f, -2.0f, 0.5f, 3.0f};
  std::vector<float> flipped = f;
  for (auto& x : flipped) x = -x;

  core::ReputationMonitor monitor(4, {.decay = 0.5, .flag_threshold = 2.0});
  monitor.observe(0, 1, flipped, f);
  monitor.end_round();
  const double after_flip = monitor.score(1);
  EXPECT_NEAR(after_flip, 2.0, 1e-12);
  EXPECT_TRUE(monitor.suspected(1));
  EXPECT_LT(monitor.trust(1), monitor.trust(0));
  EXPECT_EQ(monitor.suspects(), (std::vector<std::size_t>{1}));

  // No observation of peer 1 this round: its score HOLDS (no silent
  // rehabilitation of an isolated attacker), others stay at zero.
  monitor.observe(0, 2, f, f);
  monitor.end_round();
  EXPECT_EQ(monitor.score(1), after_flip);
  EXPECT_EQ(monitor.score(2), 0.0);
  EXPECT_EQ(monitor.rounds(), 2u);

  // Observed again: decay * old + mean(new anomalies), exactly.
  monitor.observe(0, 1, flipped, f);
  monitor.observe(2, 1, f, f);
  monitor.end_round();
  EXPECT_EQ(monitor.score(1), 0.5 * after_flip + 0.5 * (2.0 + 0.0));
}

// --- detection metrics (FedAvg server monitor) -------------------------------

TEST(Reputation, FedAvgServerMonitorFlagsExactlyTheAttackers) {
  const test_util::BlobSpec blob;
  const auto& [train, test] = test_util::blob_data(blob);
  sim::SimConfig cfg;
  cfg.workers = 8;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.seed = 42;
  cfg.faults.fault_seed = 5;
  cfg.faults.byzantine = {{.worker = 1, .from_round = 1, .to_round = 0,
                           .mode = sim::ByzantineMode::kSignFlip},
                          {.worker = 6, .from_round = 1, .to_round = 0,
                           .mode = sim::ByzantineMode::kModelReplacement}};
  sim::Engine engine(
      cfg, train, test,
      [&] {
        return nn::make_mlp({blob.features}, {blob.hidden}, blob.classes, 42);
      },
      std::nullopt);

  algos::Dynamics dyn;
  dyn.reputation_decay = 0.5;
  algos::FedAvg algo({.fraction = 1.0, .local_epochs = 1, .local_steps = 1},
                     std::move(dyn));
  (void)algo.run(engine);

  const auto* monitor = algo.reputation();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->suspects(), (std::vector<std::size_t>{1, 6}));
}

// --- determinism of the defended run ----------------------------------------

struct DefendedSnapshot {
  std::vector<std::vector<float>> params;
  std::vector<double> scores;
  std::vector<std::size_t> suspects;
  double accuracy = 0.0;
};

DefendedSnapshot run_defended_saps(std::size_t threads) {
  const test_util::BlobSpec blob;
  const auto& [train, test] = test_util::blob_data(blob);
  sim::SimConfig cfg;
  cfg.workers = 8;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.seed = 42;
  cfg.threads = threads;
  cfg.faults.fault_seed = 5;
  cfg.faults.byzantine = {{.worker = 1, .from_round = 1, .to_round = 0,
                           .mode = sim::ByzantineMode::kCollusion},
                          {.worker = 4, .from_round = 1, .to_round = 0,
                           .mode = sim::ByzantineMode::kCollusion},
                          {.worker = 6, .from_round = 1, .to_round = 0,
                           .mode = sim::ByzantineMode::kCollusion}};
  cfg.faults.collude_group = {1, 4, 6};
  cfg.faults.collude_min = 2;
  sim::Engine engine(
      cfg, train, test,
      [&] {
        return nn::make_mlp({blob.features}, {blob.hidden}, blob.classes, 42);
      },
      net::random_uniform_bandwidth(cfg.workers, 99));

  core::SapsConfig saps{.compression = 10.0};
  saps.strategy = core::SelectionStrategy::kAdaptiveReputation;
  saps.reputation_decay = 0.5;
  core::SapsPsgd algo(saps);
  const auto result = algo.run(engine);

  DefendedSnapshot snap;
  snap.accuracy = result.final().accuracy;
  for (std::size_t w = 0; w < engine.workers(); ++w) {
    const auto p = engine.params(w);
    snap.params.emplace_back(p.begin(), p.end());
  }
  const auto* monitor = algo.reputation();
  for (std::size_t w = 0; w < monitor->workers(); ++w) {
    snap.scores.push_back(monitor->score(w));
  }
  snap.suspects = monitor->suspects();
  return snap;
}

void expect_same_snapshot(const DefendedSnapshot& a,
                          const DefendedSnapshot& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.suspects, b.suspects);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t w = 0; w < a.scores.size(); ++w) {
    EXPECT_EQ(a.scores[w], b.scores[w]) << "score of worker " << w;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t w = 0; w < a.params.size(); ++w) {
    ASSERT_EQ(a.params[w], b.params[w]) << "params of worker " << w;
  }
}

TEST(Reputation, DefendedSapsRunBitIdenticalAcrossThreadsAndReruns) {
  std::unique_ptr<DefendedSnapshot> base;
  for (const auto threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto snap = run_defended_saps(threads);
    if (!base) {
      base = std::make_unique<DefendedSnapshot>(std::move(snap));
      // The defense actually engaged — otherwise the test is vacuous.
      EXPECT_EQ(base->suspects, (std::vector<std::size_t>{1, 4, 6}));
    } else {
      expect_same_snapshot(*base, snap);
    }
  }
  const auto again = run_defended_saps(0);
  expect_same_snapshot(*base, again);
}

TEST(Reputation, CohortPopulationDefendedRunIsDeterministicAcrossReruns) {
  // Population-scale cohort sampling + reputation matching (no bandwidth
  // matrix, so the trust-weighted greedy matcher is the selection path).
  const auto run_once = [] {
    scenario::ScenarioSpec spec;
    spec.set("workload", "blob");
    spec.set("algorithm", "saps");
    spec.set("workers", "4");
    spec.set("population", "12");
    spec.set("cohort", "6");
    spec.set("epochs", "2");
    spec.set("batch", "16");
    spec.set("lr", "0.1");
    spec.set("blob-train", "64");
    spec.set("blob-test", "32");
    spec.set("saps-c", "4");
    spec.set("saps-strategy", "reputation");
    spec.set("reputation-decay", "0.5");
    spec.set("byzantine", "1@1:sign-flip,9@1:sign-flip");
    scenario::Runner runner(spec);
    return runner.run("saps");
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.final_params.size(), second.final_params.size());
  for (std::size_t i = 0; i < first.final_params.size(); ++i) {
    ASSERT_EQ(first.final_params[i], second.final_params[i]) << "coord " << i;
  }
  ASSERT_EQ(first.result.history.size(), second.result.history.size());
  for (std::size_t i = 0; i < first.result.history.size(); ++i) {
    EXPECT_EQ(first.result.history[i].accuracy,
              second.result.history[i].accuracy);
  }
  const auto* saps_algo =
      dynamic_cast<const core::SapsPsgd*>(first.algorithm.get());
  ASSERT_NE(saps_algo, nullptr);
  ASSERT_NE(saps_algo->reputation(), nullptr);
  const auto* saps_again =
      dynamic_cast<const core::SapsPsgd*>(second.algorithm.get());
  EXPECT_EQ(saps_algo->reputation()->suspects(),
            saps_again->reputation()->suspects());
}

}  // namespace
}  // namespace saps
