#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace saps {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextFloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowStaysBelow) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(21);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.01) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.002);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
}

TEST(DeriveSeed, TagsChangeResult) {
  const auto base = derive_seed(99);
  EXPECT_NE(base, derive_seed(99, 1));
  EXPECT_NE(derive_seed(99, 1), derive_seed(99, 2));
  EXPECT_NE(derive_seed(99, 1, 1), derive_seed(99, 1, 2));
  EXPECT_NE(derive_seed(99, 1, 1, 1), derive_seed(99, 1, 1, 2));
}

TEST(DeriveSeed, ChildStreamsUncorrelated) {
  // Streams seeded from neighboring tags should not collide over a window.
  Rng a(derive_seed(5, 0));
  Rng b(derive_seed(5, 1));
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

class RngRangeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeTest, MeanOfUniformIsCentered) {
  Rng rng(GetParam());
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngRangeTest,
                         ::testing::Values(1, 2, 42, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace saps
