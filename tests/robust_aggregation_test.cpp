// Robust aggregation (compress/robust.hpp): trimmed mean and coordinate
// median as byzantine-tolerant alternatives to the plain mean.
//
// Pinned here:
//  - exact agreement with naive sort-based references on every tail shape
//    m ∈ {1..8} (odd/even medians, every trim_frac bucket including the
//    k = 0 and maximal-k corners);
//  - the all-equal identity (a constant column aggregates to itself);
//  - algorithm-level thread invariance: runs under aggregation=trimmed and
//    aggregation=median are bit-identical for threads ∈ {0, 1, 4};
//  - zero-byzantine sanity: with nobody attacking, robust rules still learn
//    and the fault wrapper's presence does not perturb a robust run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "algos/fedavg.hpp"
#include "algos/psgd.hpp"
#include "compress/robust.hpp"
#include "nn/models.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace saps {
namespace {

using compress::MergeRule;

// --- unit-level: robust_center vs naive references ---------------------------

TEST(RobustCenter, TrimCountNeverEatsTheWholeSample) {
  // k = floor(trim_frac·m), clamped so at least one element survives.
  EXPECT_EQ(compress::trim_count(8, 0.2), 1u);
  EXPECT_EQ(compress::trim_count(8, 0.25), 2u);
  EXPECT_EQ(compress::trim_count(8, 0.49), 3u);
  EXPECT_EQ(compress::trim_count(8, 0.9), 3u);   // clamp: (8-1)/2
  EXPECT_EQ(compress::trim_count(3, 0.34), 1u);
  EXPECT_EQ(compress::trim_count(2, 0.9), 0u);   // clamp: (2-1)/2
  EXPECT_EQ(compress::trim_count(1, 0.9), 0u);
  EXPECT_EQ(compress::trim_count(0, 0.5), 0u);
}

TEST(RobustCenter, MatchesNaiveReferenceOnEveryTailShape) {
  Rng rng(0x0B0B);
  for (std::size_t m = 1; m <= 8; ++m) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<float> vals(m);
      for (auto& v : vals) {
        v = static_cast<float>(rng.next_double() * 20.0 - 10.0);
      }
      std::vector<float> sorted = vals;
      std::sort(sorted.begin(), sorted.end());

      // Median reference: middle element (odd) or midpoint (even).
      {
        auto copy = vals;
        const float got =
            compress::robust_center(MergeRule::kMedian, copy, 0.0);
        const float want = m % 2 == 1
                               ? sorted[m / 2]
                               : (sorted[m / 2 - 1] + sorted[m / 2]) * 0.5f;
        EXPECT_EQ(got, want) << "m=" << m;
      }
      // Trimmed reference across the full trim_frac range: left-to-right
      // sorted-order summation, bit-identical by construction.
      for (const double tf : {0.0, 0.1, 0.2, 0.25, 0.34, 0.49, 0.9}) {
        auto copy = vals;
        const float got =
            compress::robust_center(MergeRule::kTrimmedMean, copy, tf);
        const std::size_t k = compress::trim_count(m, tf);
        ASSERT_LT(2 * k, m);
        float sum = 0.0f;
        for (std::size_t i = k; i < m - k; ++i) sum += sorted[i];
        const float want = sum / static_cast<float>(m - 2 * k);
        EXPECT_EQ(got, want) << "m=" << m << " trim_frac=" << tf;
      }
    }
  }
}

TEST(RobustCenter, ConstantColumnAggregatesToItself) {
  for (std::size_t m = 1; m <= 8; ++m) {
    std::vector<float> vals(m, 3.25f);
    auto a = vals;
    EXPECT_EQ(compress::robust_center(MergeRule::kMedian, a, 0.0), 3.25f);
    auto b = vals;
    EXPECT_EQ(compress::robust_center(MergeRule::kTrimmedMean, b, 0.2),
              3.25f);
  }
}

TEST(RobustCenter, SingleOutlierIsIgnoredByBothRules) {
  // 7 honest values near 1.0, one wild outlier: both robust rules land in
  // the honest range while the plain mean is dragged far away.
  std::vector<float> vals = {0.9f, 1.0f, 1.1f, 0.95f,
                             1.05f, 1.0f, 0.98f, -100.0f};
  auto a = vals;
  const float med = compress::robust_center(MergeRule::kMedian, a, 0.0);
  EXPECT_GT(med, 0.9f);
  EXPECT_LT(med, 1.1f);
  auto b = vals;
  const float trm =
      compress::robust_center(MergeRule::kTrimmedMean, b, 0.2);
  EXPECT_GT(trm, 0.9f);
  EXPECT_LT(trm, 1.1f);
}

TEST(RobustCombine, ColumnwiseAgreesWithScalarCenter) {
  // robust_combine over a [begin, end) coordinate range must equal calling
  // robust_center per coordinate.
  constexpr std::size_t kInputs = 5, kDim = 17;
  Rng rng(99);
  std::vector<std::vector<float>> data(kInputs, std::vector<float>(kDim));
  std::vector<const float*> ptrs;
  for (auto& row : data) {
    for (auto& v : row) v = static_cast<float>(rng.next_double() - 0.5);
    ptrs.push_back(row.data());
  }
  for (const auto rule : {MergeRule::kTrimmedMean, MergeRule::kMedian}) {
    const std::size_t begin = 3, end = 14;
    std::vector<float> out(end - begin);
    std::vector<float> scratch(kInputs);
    compress::robust_combine(rule, 0.2, ptrs, begin, end, out, scratch);
    for (std::size_t j = begin; j < end; ++j) {
      std::vector<float> column(kInputs);
      for (std::size_t i = 0; i < kInputs; ++i) column[i] = data[i][j];
      EXPECT_EQ(out[j - begin],
                compress::robust_center(rule, column, 0.2))
          << "coordinate " << j;
    }
  }
}

// --- algorithm-level: thread invariance and zero-byzantine sanity -----------

constexpr std::size_t kThreadCounts[] = {0, 1, 4};

struct RunSnapshot {
  sim::RunResult result;
  std::vector<std::vector<float>> params;
};

// Built directly (NOT via blob_engine) so SAPS_THREADS cannot override the
// thread count under test.
sim::Engine make_engine(std::size_t threads, bool force_wrapper = false) {
  const test_util::BlobSpec spec;
  const auto& [train, test] = test_util::blob_data(spec);
  sim::SimConfig cfg;
  cfg.workers = 8;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.seed = 42;
  cfg.threads = threads;
  cfg.faults.force_wrapper = force_wrapper;
  return sim::Engine(
      cfg, train, test,
      [spec] {
        return nn::make_mlp({spec.features}, {spec.hidden}, spec.classes, 42);
      },
      std::nullopt);
}

RunSnapshot run_robust(algos::Algorithm& algo, std::size_t threads,
                       bool force_wrapper = false) {
  auto engine = make_engine(threads, force_wrapper);
  RunSnapshot snap;
  snap.result = algo.run(engine);
  for (std::size_t w = 0; w < engine.workers(); ++w) {
    const auto p = engine.params(w);
    snap.params.emplace_back(p.begin(), p.end());
  }
  return snap;
}

void expect_identical(const RunSnapshot& base, const RunSnapshot& other) {
  ASSERT_EQ(base.params.size(), other.params.size());
  for (std::size_t w = 0; w < base.params.size(); ++w) {
    ASSERT_EQ(base.params[w].size(), other.params[w].size());
    for (std::size_t j = 0; j < base.params[w].size(); ++j) {
      ASSERT_EQ(base.params[w][j], other.params[w][j])
          << "worker " << w << " coordinate " << j;
    }
  }
  ASSERT_EQ(base.result.history.size(), other.result.history.size());
  for (std::size_t i = 0; i < base.result.history.size(); ++i) {
    EXPECT_EQ(base.result.history[i].loss, other.result.history[i].loss);
    EXPECT_EQ(base.result.history[i].accuracy,
              other.result.history[i].accuracy);
  }
}

algos::Dynamics robust_dynamics(MergeRule rule) {
  algos::Dynamics dyn;
  dyn.merge = rule;
  dyn.trim_frac = 0.2;
  return dyn;
}

template <typename MakeAlgo>
void check_thread_invariance(MakeAlgo make_algo) {
  std::unique_ptr<RunSnapshot> base;
  for (const auto threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto algo = make_algo();
    auto snap = run_robust(*algo, threads);
    if (!base) {
      base = std::make_unique<RunSnapshot>(std::move(snap));
      // Zero-byzantine sanity: robust aggregation over honest workers
      // still trains well above chance.
      EXPECT_GT(base->result.final().accuracy, 0.5);
    } else {
      expect_identical(*base, snap);
    }
  }
}

TEST(RobustAggregation, TrimmedPsgdBitIdenticalAcrossThreadCounts) {
  check_thread_invariance([] {
    return std::make_unique<algos::PsgdAllReduce>(
        robust_dynamics(MergeRule::kTrimmedMean));
  });
}

TEST(RobustAggregation, MedianPsgdBitIdenticalAcrossThreadCounts) {
  check_thread_invariance([] {
    return std::make_unique<algos::PsgdAllReduce>(
        robust_dynamics(MergeRule::kMedian));
  });
}

TEST(RobustAggregation, TrimmedFedAvgBitIdenticalAcrossThreadCounts) {
  check_thread_invariance([] {
    return std::make_unique<algos::FedAvg>(
        algos::FedAvgConfig{
            .fraction = 1.0, .local_epochs = 1, .local_steps = 1},
        robust_dynamics(MergeRule::kTrimmedMean));
  });
}

TEST(RobustAggregation, MedianSparseFedAvgBitIdenticalAcrossThreadCounts) {
  // Covers the masked-upload (sparse) robust aggregation path.
  check_thread_invariance([] {
    return std::make_unique<algos::FedAvg>(
        algos::FedAvgConfig{.fraction = 1.0,
                            .local_epochs = 1,
                            .local_steps = 1,
                            .upload_compression = 5.0},
        robust_dynamics(MergeRule::kMedian));
  });
}

TEST(RobustAggregation, FaultWrapperPresenceDoesNotPerturbRobustRuns) {
  // A forced zero-knob FaultyFabric under a robust-aggregation run changes
  // nothing: the robust math reads the same frames the plain fabric
  // delivers.
  auto plain_algo = std::make_unique<algos::PsgdAllReduce>(
      robust_dynamics(MergeRule::kTrimmedMean));
  const auto plain = run_robust(*plain_algo, 0, /*force_wrapper=*/false);
  auto wrapped_algo = std::make_unique<algos::PsgdAllReduce>(
      robust_dynamics(MergeRule::kTrimmedMean));
  const auto wrapped = run_robust(*wrapped_algo, 0, /*force_wrapper=*/true);
  expect_identical(plain, wrapped);
}

}  // namespace
}  // namespace saps
