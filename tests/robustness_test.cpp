// Edge cases and failure injection: odd worker counts, two-worker minimum,
// dropout during the gossip window, Dirichlet non-IID training, and the
// cross-compressor traffic ordering that motivates the paper (sparsification
// ≫ quantization ≫ dense).
#include <gtest/gtest.h>

#include "algos/psgd.hpp"
#include "algos/qsgd_psgd.hpp"
#include "core/saps.hpp"
#include "data/synthetic.hpp"
#include "gossip/generator.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace saps {
namespace {

sim::Engine blob_engine(sim::SimConfig cfg) {
  // Historical robustness workload: 3 classes, noisier blobs.
  const test_util::BlobSpec spec{900, 150, 8, 3, 0.35, 777, 16};
  return test_util::blob_engine(std::move(cfg), spec);
}

TEST(Robustness, OddWorkerCountLeavesOneUnmatchedPerRound) {
  sim::SimConfig cfg;
  cfg.workers = 5;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  auto engine = blob_engine(cfg);
  core::SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  EXPECT_GT(result.final().accuracy, 0.85);
  // With 5 workers, each round has 2 pairs; per-round traffic over all
  // workers is 4 messages (one worker idles), so the mean per-worker traffic
  // is 4/5 of the all-matched case.
  EXPECT_GT(engine.network().mean_worker_bytes(), 0.0);
}

TEST(Robustness, TwoWorkersIsTheMinimumTopology) {
  sim::SimConfig cfg;
  cfg.workers = 2;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  auto engine = blob_engine(cfg);
  core::SapsPsgd algo({.compression = 4.0});
  const auto result = algo.run(engine);
  EXPECT_GT(result.final().accuracy, 0.85);
}

TEST(Robustness, DirichletNonIidStillConverges) {
  sim::SimConfig cfg;
  cfg.workers = 6;
  cfg.epochs = 5;
  cfg.batch_size = 16;
  cfg.lr = 0.08;
  cfg.partition = sim::PartitionKind::kDirichlet;
  cfg.dirichlet_alpha = 0.3;
  auto engine = blob_engine(cfg);
  core::SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  EXPECT_GT(result.final().accuracy, 0.7);
}

TEST(Robustness, GossipWindowStaysConnectedUnderChurn) {
  // Workers keep leaving/rejoining; the union of selected edges over a
  // window restricted to CONTINUOUSLY-ACTIVE workers must stay connected.
  const std::size_t n = 12;
  auto bw = net::random_uniform_bandwidth(n, 99);
  gossip::GossipGenerator gen(bw, {.t_thres = 5, .seed = 4});
  const std::size_t window = 10;
  std::vector<gossip::GossipMatrix> history;
  for (std::size_t t = 0; t < 200; ++t) {
    // Worker (t/20 % n) is down for 10-round stretches.
    const std::size_t down = (t / 20) % n;
    for (std::size_t w = 0; w < n; ++w) gen.set_active(w, w != down);
    history.push_back(gen.generate(t));
    gen.set_active(down, true);
  }
  for (std::size_t start = 40; start + window <= 200; start += window) {
    graph::AdjMatrix g(n);
    std::vector<bool> touched(n, false);
    for (std::size_t t = start; t < start + window; ++t) {
      for (const auto& [i, j] : history[t].pairs()) {
        g.set(i, j);
        touched[i] = touched[j] = true;
      }
    }
    // Every worker matched at least once in the window must be reachable
    // from every other matched worker.
    const auto comps = graph::connected_components(g);
    std::size_t comps_with_edges = 0;
    for (const auto& comp : comps) {
      bool any = false;
      for (const auto v : comp) {
        if (touched[v]) any = true;
      }
      if (any && comp.size() > 1) ++comps_with_edges;
    }
    EXPECT_LE(comps_with_edges, 2u) << "window at " << start;
  }
}

TEST(Robustness, AllButTwoWorkersDropped) {
  sim::SimConfig cfg;
  cfg.workers = 6;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  auto engine = blob_engine(cfg);
  core::SapsConfig scfg{.compression = 10.0};
  scfg.on_round = [](std::size_t round, core::Coordinator& coord,
                     sim::Engine& eng) {
    if (round == 5) {
      for (std::size_t w = 2; w < 6; ++w) {
        coord.set_active(w, false);
        eng.set_active(w, false);
      }
    }
  };
  core::SapsPsgd algo(scfg);
  const auto result = algo.run(engine);
  // Training continues on the surviving pair.
  EXPECT_GT(result.final().accuracy, 0.8);
}

TEST(Robustness, CompressorTrafficOrdering) {
  // sparsification (c=100) < quantization (1-level QSGD) < dense — the
  // paper's core motivation, measured end-to-end.
  sim::SimConfig cfg;
  cfg.workers = 4;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.lr = 0.1;

  auto saps_engine = blob_engine(cfg);
  core::SapsPsgd saps({.compression = 100.0});
  saps.run(saps_engine);

  auto qsgd_engine = blob_engine(cfg);
  algos::QsgdPsgd qsgd({.levels = 1});
  qsgd.run(qsgd_engine);

  auto dense_engine = blob_engine(cfg);
  algos::PsgdAllReduce psgd;
  psgd.run(dense_engine);

  const double saps_mb = saps_engine.network().mean_worker_bytes();
  const double qsgd_mb = qsgd_engine.network().mean_worker_bytes();
  const double dense_mb = dense_engine.network().mean_worker_bytes();
  EXPECT_LT(saps_mb, qsgd_mb);
  EXPECT_LT(qsgd_mb, dense_mb * 4.0);  // all-gather overhead ≤ n× ring pass
}

TEST(Robustness, EvalEveryRoundsProducesDenseHistory) {
  sim::SimConfig cfg;
  cfg.workers = 4;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.eval_every_rounds = 3;
  auto engine = blob_engine(cfg);
  core::SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  ASSERT_GT(result.history.size(), 3u);
  for (std::size_t i = 2; i < result.history.size() - 1; ++i) {
    EXPECT_EQ(result.history[i].round - result.history[i - 1].round, 3u);
  }
}

}  // namespace
}  // namespace saps
