// Tests for the paper's algorithm: coordinator, worker, and end-to-end
// SAPS-PSGD behaviour including federated dynamics (dropout/rejoin).
#include <gtest/gtest.h>

#include "compress/mask.hpp"
#include "core/coordinator.hpp"
#include "core/saps.hpp"
#include "core/worker.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "test_util.hpp"

namespace saps::core {
namespace {

using test_util::blob_engine;

TEST(Coordinator, RandomFallbackWithoutBandwidth) {
  Coordinator coord(8, std::nullopt, {});
  EXPECT_STREQ(coord.strategy_name(), "random-match");
  const auto plan = coord.begin_round();
  EXPECT_EQ(plan.round, 0u);
  EXPECT_EQ(plan.gossip.pairs().size(), 4u);
}

TEST(Coordinator, AdaptiveWithBandwidth) {
  const auto bw = net::random_uniform_bandwidth(8, 5);
  Coordinator coord(8, bw, {});
  EXPECT_STREQ(coord.strategy_name(), "adaptive-bandwidth");
  const auto plan = coord.begin_round();
  EXPECT_EQ(plan.gossip.pairs().size(), 4u);
  EXPECT_GT(coord.bottleneck_bandwidth(plan.gossip), 0.0);
}

TEST(Coordinator, SeedsDifferAcrossRounds) {
  Coordinator coord(4, std::nullopt, {});
  const auto a = coord.begin_round();
  const auto b = coord.begin_round();
  EXPECT_NE(a.mask_seed, b.mask_seed);
  EXPECT_EQ(b.round, 1u);
}

TEST(Coordinator, ControlBytesAreTiny) {
  Coordinator coord(32, std::nullopt, {});
  for (int t = 0; t < 100; ++t) {
    (void)coord.begin_round();
    for (std::size_t w = 0; w < 32; ++w) coord.worker_done(w);
  }
  // 100 rounds × 32 workers of status traffic stays under ~1 MB of control
  // data — the "lightweight coordinator" claim.
  EXPECT_LT(coord.control_bytes(), 1e6);
  EXPECT_GT(coord.control_bytes(), 0.0);
}

TEST(Coordinator, DropoutExcludesWorkerFromPlans) {
  Coordinator coord(6, std::nullopt, {});
  coord.set_active(2, false);
  for (int t = 0; t < 20; ++t) {
    const auto plan = coord.begin_round();
    EXPECT_EQ(plan.gossip.peer(2), 2u);
  }
}

TEST(SapsWorker, SparsifyAndMergeRoundTrip) {
  auto engine = blob_engine(2, 1);
  SapsWorker w0(engine, 0, 10.0), w1(engine, 1, 10.0);
  // Perturb worker 1 so models differ.
  engine.sgd_step(1, 0);
  const auto mask = compress::bernoulli_mask(99, engine.param_count(), 10.0);
  const auto v0 = w0.sparsified_model(mask);
  const auto v1 = w1.sparsified_model(mask);
  EXPECT_EQ(v0.size(), compress::mask_popcount(mask));
  w0.merge_peer(mask, v1);
  w1.merge_peer(mask, v0);
  const auto p0 = engine.params(0), p1 = engine.params(1);
  for (std::size_t j = 0; j < p0.size(); ++j) {
    if (mask[j]) {
      EXPECT_FLOAT_EQ(p0[j], p1[j]);
    }
  }
}

TEST(SapsWorker, RejectsBadConstruction) {
  auto engine = blob_engine(2, 1);
  EXPECT_THROW(SapsWorker(engine, 5, 10.0), std::out_of_range);
  EXPECT_THROW(SapsWorker(engine, 0, 0.5), std::invalid_argument);
}

TEST(SapsPsgd, ConvergesOnBlobs) {
  auto engine = blob_engine(8, 5);
  SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  EXPECT_EQ(result.algorithm, "SAPS-PSGD");
  EXPECT_GT(result.final().accuracy, 0.85);
}

TEST(SapsPsgd, TrafficMatchesSparsifiedExchange) {
  auto engine = blob_engine(4, 1);
  SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  // Per round a matched worker moves ≈ 2·(N/c)·4 bytes; with even workers
  // everyone is matched every round.  Allow the binomial mask fluctuation
  // plus the final model collection (worker 0 only).
  const double n = static_cast<double>(engine.param_count());
  const double per_round = 2.0 * (n / 10.0) * 4.0;
  const double expected = per_round * static_cast<double>(result.final().round);
  const double actual = engine.network().worker_bytes(1);  // not the collector
  EXPECT_NEAR(actual, expected, 0.25 * expected);
}

TEST(SapsPsgd, FarLessTrafficThanUncompressedExchange) {
  auto engine = blob_engine(4, 2);
  SapsPsgd algo({.compression = 100.0});
  const auto result = algo.run(engine);
  const double dense_per_round =
      2.0 * 4.0 * static_cast<double>(engine.param_count());
  const double actual_per_round = engine.network().worker_bytes(1) /
                                  static_cast<double>(result.final().round);
  EXPECT_LT(actual_per_round, dense_per_round / 20.0);
}

TEST(SapsPsgd, ConsensusDistanceStaysBounded) {
  auto engine = blob_engine(8, 3);
  SapsPsgd algo({.compression = 10.0});
  algo.run(engine);
  EXPECT_LT(engine.consensus_distance(), 1.0);
}

TEST(SapsPsgd, AdaptiveSelectionRecordsBandwidth) {
  auto bw = net::random_uniform_bandwidth(8, 7);
  auto engine = blob_engine(8, 1, std::move(bw));
  SapsPsgd algo({.compression = 10.0});
  const auto result = algo.run(engine);
  EXPECT_FALSE(algo.selection_bandwidth().empty());
  for (const auto v : algo.selection_bandwidth()) EXPECT_GT(v, 0.0);
  EXPECT_GT(result.final().comm_seconds, 0.0);
  EXPECT_GT(algo.control_bytes(), 0.0);
}

TEST(SapsPsgd, RandomStrategyWorksToo) {
  auto engine = blob_engine(8, 5);
  SapsPsgd algo(
      {.compression = 10.0, .strategy = SelectionStrategy::kRandomMatch});
  const auto result = algo.run(engine);
  EXPECT_EQ(result.algorithm, "SAPS-PSGD(random)");
  EXPECT_GT(result.final().accuracy, 0.8);
}

TEST(SapsPsgd, SurvivesWorkerDropoutAndRejoin) {
  auto engine = blob_engine(8, 4);
  SapsConfig cfg{.compression = 10.0};
  cfg.on_round = [](std::size_t round, Coordinator& coord, sim::Engine& eng) {
    // Workers 5 and 6 leave for rounds [20, 60), then rejoin.
    const bool away = round >= 20 && round < 60;
    for (const std::size_t w : {5u, 6u}) {
      coord.set_active(w, !away);
      eng.set_active(w, !away);
    }
  };
  SapsPsgd algo(cfg);
  const auto result = algo.run(engine);
  EXPECT_GT(result.final().accuracy, 0.8);  // training survives the churn
}

TEST(SapsPsgd, OnRoundFiresOncePerRoundInOrder) {
  auto engine = blob_engine(4, 2);
  const std::size_t total_rounds =
      engine.steps_per_epoch() * engine.config().epochs;
  std::vector<std::size_t> seen;
  SapsConfig cfg{.compression = 10.0};
  cfg.on_round = [&](std::size_t round, Coordinator&, sim::Engine&) {
    seen.push_back(round);
  };
  SapsPsgd(cfg).run(engine);
  ASSERT_EQ(seen.size(), total_rounds);
  for (std::size_t r = 0; r < seen.size(); ++r) EXPECT_EQ(seen[r], r);
}

TEST(SapsPsgd, OnRoundDropoutKeepsCoordinatorAndEngineInSync) {
  // The documented contract of SapsConfig::on_round: dropping or rejoining a
  // worker must flip BOTH coordinator and engine set_active. Verify that a
  // hook doing so keeps the two views agreeing at every round, and that the
  // dropped worker is truly frozen (it neither trains nor gossips, so its
  // parameters are bit-identical across the away window).
  auto engine = blob_engine(6, 3);
  const std::size_t total_rounds =
      engine.steps_per_epoch() * engine.config().epochs;
  ASSERT_GE(total_rounds, 8u);
  constexpr std::size_t kAway = 3;
  const std::size_t kLeave = total_rounds / 4;
  const std::size_t kReturn = (3 * total_rounds) / 4;
  bool flags_in_sync = true;
  std::vector<float> frozen;
  bool frozen_unchanged = true;
  SapsConfig cfg{.compression = 10.0};
  cfg.on_round = [&](std::size_t round, Coordinator& coord, sim::Engine& eng) {
    const bool away = round >= kLeave && round < kReturn;
    coord.set_active(kAway, !away);
    eng.set_active(kAway, !away);
    for (std::size_t w = 0; w < eng.workers(); ++w) {
      flags_in_sync = flags_in_sync && coord.active(w) == eng.active(w);
    }
    const auto p = eng.params(kAway);
    if (round == kLeave) frozen.assign(p.begin(), p.end());
    if (round > kLeave && round <= kReturn && !frozen.empty()) {
      for (std::size_t j = 0; j < p.size(); ++j) {
        frozen_unchanged = frozen_unchanged && p[j] == frozen[j];
      }
    }
  };
  SapsPsgd algo(cfg);
  const auto result = algo.run(engine);
  EXPECT_TRUE(flags_in_sync);
  ASSERT_FALSE(frozen.empty());
  EXPECT_TRUE(frozen_unchanged);
  EXPECT_GT(result.final().accuracy, 0.8);
  // After the run every worker is active again: the hook rejoined kAway.
  for (std::size_t w = 0; w < engine.workers(); ++w) {
    EXPECT_TRUE(engine.active(w));
  }
}

TEST(SapsPsgd, DeterministicGivenSeed) {
  auto e1 = blob_engine(4, 1);
  auto e2 = blob_engine(4, 1);
  SapsPsgd a({.compression = 10.0}), b({.compression = 10.0});
  const auto r1 = a.run(e1);
  const auto r2 = b.run(e2);
  ASSERT_EQ(r1.history.size(), r2.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.history[i].accuracy, r2.history[i].accuracy);
    EXPECT_DOUBLE_EQ(r1.history[i].worker_mb, r2.history[i].worker_mb);
  }
}

TEST(SapsPsgd, MaskedCoordinatesAgreeAfterExchange) {
  // After each round, matched pairs agree on masked coordinates; over many
  // rounds the models mix toward consensus.
  auto engine = blob_engine(4, 2);
  SapsPsgd algo({.compression = 2.0});
  algo.run(engine);
  const double d = engine.consensus_distance();
  auto engine_no_comm = blob_engine(4, 2);
  // Baseline: pure local SGD with no communication diverges further.
  for (std::size_t e = 0; e < 2; ++e) {
    for (std::size_t s = 0; s < engine_no_comm.steps_per_epoch(); ++s) {
      engine_no_comm.for_each_worker(
          [&](std::size_t w) { engine_no_comm.sgd_step(w, e); });
    }
  }
  EXPECT_LT(d, engine_no_comm.consensus_distance());
}

}  // namespace
}  // namespace saps::core
