// Scenario API coverage: the self-registering registry (every key
// constructs), ScenarioSpec parse→print→parse losslessness, the friendly
// exit-2 contract on unknown keys / out-of-range parameters, the fast-mode
// derivations (including the --batch-only stale-step-count fix), and the
// CSV/JSONL metric sinks.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "scenario/cli.hpp"
#include "scenario/runner.hpp"
#include "util/flags.hpp"

namespace saps {
namespace {

using scenario::ParamDesc;
using scenario::ParamType;
using scenario::Registry;
using scenario::ScenarioSpec;

// Builds a Flags object from literal tokens (argv[0] implied).
Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::vector<std::string>> keepalive;
  keepalive.push_back(std::move(args));
  auto& stored = keepalive.back();
  std::vector<char*> argv;
  static std::string prog = "scenario_test";
  argv.push_back(prog.data());
  for (auto& a : stored) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Registry, PaperKeysInPaperOrder) {
  const auto& reg = Registry::instance();
  const std::vector<std::string> expect = {"psgd", "topk", "fedavg",
                                           "sfedavg", "dpsgd", "dcd", "saps"};
  EXPECT_EQ(reg.algorithm_keys(/*paper_only=*/true), expect);
  const std::vector<std::string> workloads = {"mnist", "cifar", "resnet"};
  EXPECT_EQ(reg.workload_keys(/*paper_only=*/true), workloads);
  // QSGD is registered (ablation bench) but outside the comparison.
  EXPECT_TRUE(reg.has_algorithm("qsgd"));
  EXPECT_FALSE(reg.algorithm("qsgd").in_paper_comparison);
}

TEST(Registry, EveryAlgorithmKeyConstructsFromDefaults) {
  const auto& reg = Registry::instance();
  for (const auto& key : reg.algorithm_keys()) {
    SCOPED_TRACE(key);
    const auto& entry = reg.algorithm(key);
    const auto params =
        scenario::resolve_entry_params(entry.params, scenario::ParamSet{});
    const auto algo = entry.make(params, scenario::AlgoBuildContext{});
    ASSERT_NE(algo, nullptr);
    EXPECT_STRNE(algo->name(), "");
  }
}

TEST(Registry, EveryWorkloadKeyBuildsDeterministically) {
  const auto& reg = Registry::instance();
  scenario::WorkloadContext ctx;
  ctx.workers = 2;
  ctx.samples_per_worker = 10;
  ctx.test_samples = 10;
  for (const auto& key : reg.workload_keys()) {
    SCOPED_TRACE(key);
    const auto& entry = reg.workload(key);
    const auto params =
        scenario::resolve_entry_params(entry.params, scenario::ParamSet{});
    const auto w = entry.make(params, ctx);
    EXPECT_FALSE(w.display_name.empty());
    EXPECT_GT(w.train.size(), 0u);
    EXPECT_GT(w.test.size(), 0u);
    EXPECT_GT(w.default_lr, 0.0);
    // The factory must be deterministic (all replicas start identical).
    auto a = w.factory();
    auto b = w.factory();
    ASSERT_EQ(a.param_count(), b.param_count());
    const auto pa = a.parameters();
    const auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i], pb[i]) << "param " << i;
    }
  }
}

TEST(Registry, UnknownKeysThrowFriendly) {
  const auto& reg = Registry::instance();
  EXPECT_THROW((void)reg.algorithm("nope"), std::invalid_argument);
  EXPECT_THROW((void)reg.workload("nope"), std::invalid_argument);
  try {
    (void)reg.algorithm("nope");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("saps"), std::string::npos)
        << "error should list the known keys: " << e.what();
  }
}

TEST(ScenarioSpec, DefaultRoundTripsLosslessly) {
  ScenarioSpec spec;
  scenario::finalize_spec(spec);
  const auto text = scenario::to_spec_text(spec);
  const auto reparsed = scenario::parse_spec_text(text);
  EXPECT_TRUE(spec.equivalent(reparsed)) << text;
  // And printing the reparse is byte-identical (canonical forms).
  EXPECT_EQ(text, scenario::to_spec_text(reparsed));
}

TEST(ScenarioSpec, RichSpecRoundTripsLosslessly) {
  ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("algorithm", "saps,dcd");
  spec.set("workers", "4");
  spec.set("epochs", "3");
  spec.set("batch", "16");
  spec.set("lr", "0.125");
  spec.set("partition", "shard");
  spec.set("bandwidth", "uniform");
  spec.set("bandwidth-seed", "123");
  spec.set("latency", "0.0015");
  spec.set("latency-matrix",
           "0,0.001,0.002,0.003;0.001,0,0.004,0.005;"
           "0.002,0.004,0,0.006;0.003,0.005,0.006,0");
  spec.set("failures", "2@5-25,3@40");
  spec.set("saps-c", "12.5");
  spec.set("blob-noise", "0.35");
  scenario::finalize_spec(spec);

  ASSERT_EQ(spec.latency_matrix.size(), 16u);
  EXPECT_EQ(spec.latency_matrix[1], 0.001);
  ASSERT_EQ(spec.failures.size(), 2u);
  EXPECT_EQ(spec.failures[0],
            (scenario::FailureEvent{.worker = 2, .drop_round = 5,
                                    .rejoin_round = 25}));
  EXPECT_EQ(spec.failures[1].rejoin_round, 0u);  // never rejoins

  const auto text = scenario::to_spec_text(spec);
  const auto reparsed = scenario::parse_spec_text(text);
  EXPECT_TRUE(spec.equivalent(reparsed)) << text;
  EXPECT_EQ(text, scenario::to_spec_text(reparsed));
}

TEST(ScenarioSpec, UnknownAndInvalidKeysThrow) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("no-such-knob", "1"), std::invalid_argument);
  EXPECT_THROW(spec.set("workers", "1"), std::invalid_argument);   // < 2
  EXPECT_THROW(spec.set("saps-c", "0.5"), std::invalid_argument);  // < 1
  EXPECT_THROW(spec.set("partition", "zebra"), std::invalid_argument);
  EXPECT_THROW(spec.set("epochs", "many"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text("workload"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text("algorithm=warp-drive"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text("failures=1@9-5\nworkers=4"),
               std::invalid_argument);  // rejoin before drop
  EXPECT_THROW(scenario::parse_spec_text("failures=9@5\nworkers=4"),
               std::invalid_argument);  // worker out of range
  EXPECT_THROW(scenario::parse_spec_text("latency-matrix=1,2;3"),
               std::invalid_argument);  // ragged rows
  EXPECT_THROW(scenario::parse_spec_text("latency-matrix=0,0;0,0\nworkers=4"),
               std::invalid_argument);  // wrong arity for 4 workers
  EXPECT_THROW(scenario::parse_spec_text("bandwidth=cities\nworkers=8"),
               std::invalid_argument);  // cities matrix is 14 workers
}

using ScenarioSpecDeathTest = ::testing::Test;

TEST(ScenarioSpecDeathTest, CliViolationsExitTwoWithFriendlyMessage) {
  // The util/flags exit-2 contract, preserved by the generated CLI layer.
  EXPECT_EXIT(
      { (void)scenario::scenario_from_flags_or_exit(
            make_flags({"--saps-c=0.5"})); },
      ::testing::ExitedWithCode(2), "saps-c");
  EXPECT_EXIT(
      { (void)scenario::scenario_from_flags_or_exit(
            make_flags({"--threads=9999"})); },
      ::testing::ExitedWithCode(2), "threads");
  EXPECT_EXIT(
      { (void)scenario::scenario_from_flags_or_exit(
            make_flags({"--spec=/no/such/file.spec"})); },
      ::testing::ExitedWithCode(2), "cannot read");
  EXPECT_EXIT(
      { (void)scenario::sinks_from_flags_or_exit(
            make_flags({"--sink=carrier-pigeon"})); },
      ::testing::ExitedWithCode(2), "unknown sink");
}

TEST(ScenarioSpec, FastModeDerivesFedavgStepsFromResolvedPair) {
  // Defaults: 150 samples / batch 10 → 3 local steps.
  const auto base = scenario::spec_from_flags(make_flags({}));
  EXPECT_EQ(base.params.raw("fedavg-steps"), "3");
  // Overriding --samples re-derives (the behavior the old harness had)...
  const auto more = scenario::spec_from_flags(make_flags({"--samples=300"}));
  EXPECT_EQ(more.params.raw("fedavg-steps"), "6");
  // ...and overriding ONLY --batch re-derives too (the old harness left a
  // stale count computed from the default batch size here).
  const auto batch = scenario::spec_from_flags(make_flags({"--batch=30"}));
  EXPECT_EQ(batch.params.raw("fedavg-steps"), "1");
  // An explicit flag always wins over the derivation.
  const auto expl = scenario::spec_from_flags(
      make_flags({"--batch=30", "--fedavg-steps=7"}));
  EXPECT_EQ(expl.params.raw("fedavg-steps"), "7");
}

TEST(ScenarioSpec, FullPresetAppliesUnlessOverridden) {
  const auto full = scenario::spec_from_flags(make_flags({"--full"}));
  EXPECT_EQ(full.workers, 32u);
  EXPECT_EQ(full.epochs, 100u);
  EXPECT_EQ(full.samples, 1875u);
  EXPECT_EQ(full.batch, 50u);
  EXPECT_EQ(full.params.raw("topk-c"), "1000");   // paper ratio
  EXPECT_EQ(full.params.raw("fedavg-steps"), "0");  // E=1 local epochs
  const auto mixed =
      scenario::spec_from_flags(make_flags({"--full", "--workers=16"}));
  EXPECT_EQ(mixed.workers, 16u);
  EXPECT_EQ(mixed.epochs, 100u);
  // Fast mode shrinks the compression ratios.
  const auto fast = scenario::spec_from_flags(make_flags({}));
  EXPECT_EQ(fast.params.raw("topk-c"), "100");
  EXPECT_EQ(fast.params.raw("sfedavg-c"), "20");
}

TEST(ScenarioSpec, FlagsOverrideSpecFileWhichOverridesDefaults) {
  const auto path = ::testing::TempDir() + "/scenario_test_layering.spec";
  {
    std::ofstream out(path);
    out << "# layering test\nworkers=6\nepochs=9\nsaps-c=33\n";
  }
  const auto spec = scenario::spec_from_flags(
      make_flags({"--spec=" + path, "--epochs=2"}));
  EXPECT_EQ(spec.workers, 6u);                  // file value
  EXPECT_EQ(spec.epochs, 2u);                   // CLI wins
  EXPECT_EQ(spec.params.raw("saps-c"), "33");   // file value
  EXPECT_EQ(spec.batch, 10u);                   // default survives
}

TEST(Sinks, CsvAndJsonlCarryEveryPointAndTheSpecHeader) {
  ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("algorithm", "saps");
  spec.set("workers", "4");
  spec.set("epochs", "1");
  spec.set("batch", "16");
  spec.set("lr", "0.1");
  spec.set("blob-train", "64");
  spec.set("blob-test", "32");
  spec.set("saps-c", "4");

  std::ostringstream csv_out, jsonl_out;
  scenario::SinkList sinks;
  sinks.add(std::make_unique<scenario::CsvSink>(csv_out));
  sinks.add(std::make_unique<scenario::JsonlSink>(jsonl_out));

  scenario::Runner runner(spec);
  const auto record = runner.run("saps", &sinks);

  const auto csv = csv_out.str();
  EXPECT_NE(csv.find("# workload=blob"), std::string::npos) << csv;
  EXPECT_NE(csv.find("workload,algorithm,round,epoch,loss,accuracy,"
                     "worker_mb,comm_seconds"),
            std::string::npos);
  const auto jsonl = jsonl_out.str();
  EXPECT_NE(jsonl.find("\"event\":\"run_begin\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"algorithm\":\"SAPS-PSGD\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"run_end\""), std::string::npos);
  // One CSV row and one JSONL point per history entry.
  const auto count = [](const std::string& hay, const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count(jsonl, "\"event\":\"point\""),
            record.result.history.size());
  EXPECT_EQ(count(csv, "Blob-MLP,SAPS-PSGD,"),
            record.result.history.size());
}

TEST(Runner, EveryAlgorithmAcceptsAFailureSchedule) {
  // Dropout/rejoin was once SAPS-only; the Dynamics hook lifted the
  // restriction to every registered algorithm.
  const auto& reg = Registry::instance();
  for (const auto& key : reg.algorithm_keys()) {
    SCOPED_TRACE(key);
    EXPECT_TRUE(reg.algorithm(key).supports_failures);
  }
  ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("workers", "4");
  spec.set("epochs", "1");
  spec.set("blob-train", "64");
  spec.set("blob-test", "32");
  spec.set("failures", "1@2-4");
  scenario::Runner runner(spec);
  const auto rec = runner.run("dpsgd");
  EXPECT_FALSE(rec.result.history.empty());
}

TEST(ScenarioSpec, FaultKnobsRoundTripLosslessly) {
  ScenarioSpec spec;
  spec.set("workers", "8");
  spec.set("byzantine", "1@2-10:sign-flip,3@1:scaled-noise,5@4:silent");
  spec.set("net-partition", "0.1.2.3|4.5.6.7@2-6,0.1|2.3.4.5.6.7@8");
  spec.set("drop-prob", "0.25");
  spec.set("dup-prob", "0.1");
  spec.set("delay-prob", "0.5");
  spec.set("delay-seconds", "0.125");
  spec.set("fault-seed", "777");
  spec.set("aggregation", "trimmed");
  spec.set("trim-frac", "0.25");
  scenario::finalize_spec(spec);

  ASSERT_EQ(spec.byzantine.size(), 3u);
  EXPECT_EQ(spec.byzantine[0].worker, 1u);
  EXPECT_EQ(spec.byzantine[0].from_round, 2u);
  EXPECT_EQ(spec.byzantine[0].to_round, 10u);
  EXPECT_EQ(spec.byzantine[0].mode, sim::ByzantineMode::kSignFlip);
  EXPECT_EQ(spec.byzantine[1].from_round, 1u);
  EXPECT_EQ(spec.byzantine[1].to_round, 0u);  // no window end: forever
  EXPECT_EQ(spec.byzantine[2].mode, sim::ByzantineMode::kSilent);
  ASSERT_EQ(spec.net_partition.size(), 2u);
  ASSERT_EQ(spec.net_partition[0].groups.size(), 2u);
  EXPECT_EQ(spec.net_partition[0].groups[1],
            (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_EQ(spec.net_partition[1].to_round, 0u);
  EXPECT_EQ(spec.fault_seed, 777u);

  const auto text = scenario::to_spec_text(spec);
  const auto reparsed = scenario::parse_spec_text(text);
  EXPECT_TRUE(spec.equivalent(reparsed)) << text;
  EXPECT_EQ(text, scenario::to_spec_text(reparsed));

  // Unset fault-seed resolves deterministically from the top-level seed.
  ScenarioSpec derived;
  scenario::finalize_spec(derived);
  EXPECT_NE(derived.fault_seed, 0u);
  ScenarioSpec again;
  scenario::finalize_spec(again);
  EXPECT_EQ(derived.fault_seed, again.fault_seed);
}

TEST(ScenarioSpec, FaultKnobCombinationsAreValidated) {
  // Byzantine worker index out of the population.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nbyzantine=4@1:sign-flip"),
      std::invalid_argument);
  // Unknown byzantine mode.
  EXPECT_THROW(scenario::parse_spec_text("workers=4\nbyzantine=1@1:chaotic"),
               std::invalid_argument);
  // A window end before its start, and rounds counted from 1.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nbyzantine=1@9-5:sign-flip"),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nbyzantine=1@0:sign-flip"),
      std::invalid_argument);
  // Partition groups must be disjoint...
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nnet-partition=0.1|1.2.3@1"),
      std::invalid_argument);
  // ...and inside the population.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nnet-partition=0.1|2.9@1"),
      std::invalid_argument);
  // delay-prob without a delay duration is a silent no-op — rejected.
  EXPECT_THROW(scenario::parse_spec_text("workers=4\ndelay-prob=0.5"),
               std::invalid_argument);
  // Overlapping failure windows for the same worker.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nfailures=1@2-10,1@5-20"),
      std::invalid_argument);
  // Unknown aggregation rule.
  EXPECT_THROW(scenario::parse_spec_text("workers=4\naggregation=average"),
               std::invalid_argument);
  // A cohort must leave headroom for the worst simultaneous failure load.
  EXPECT_THROW(
      scenario::parse_spec_text(
          "workers=2\npopulation=100\ncohort=3\nfailures=0@2-8,1@3-9"),
      std::invalid_argument);
  EXPECT_NO_THROW(scenario::parse_spec_text(
      "workers=2\npopulation=100\ncohort=4\nfailures=0@2-8,1@3-9"));
}

TEST(ScenarioSpec, AdaptiveAttackKnobsRoundTripLosslessly) {
  ScenarioSpec spec;
  spec.set("workers", "8");
  spec.set("byzantine",
           "2@3:model-replacement,1@1:collusion,4@1:collusion,6@2-9:collusion");
  spec.set("collude-group", "1.4.6");  // K defaults to 2, printed canonical
  spec.set("adapt-attack", "0.5");
  spec.set("clip-norm", "12.5");
  spec.set("reputation-decay", "0.9");
  scenario::finalize_spec(spec);

  ASSERT_EQ(spec.byzantine.size(), 4u);
  EXPECT_EQ(spec.byzantine[0].mode, sim::ByzantineMode::kModelReplacement);
  EXPECT_EQ(spec.byzantine[1].mode, sim::ByzantineMode::kCollusion);
  EXPECT_EQ(spec.collude_group, (std::vector<std::size_t>{1, 4, 6}));
  EXPECT_EQ(spec.collude_min, 2u);
  EXPECT_EQ(spec.adapt_attack, 0.5);
  EXPECT_EQ(spec.clip_norm, 12.5);
  EXPECT_EQ(spec.reputation_decay, 0.9);

  const auto text = scenario::to_spec_text(spec);
  EXPECT_NE(text.find("collude-group=1.4.6:2"), std::string::npos) << text;
  const auto reparsed = scenario::parse_spec_text(text);
  EXPECT_TRUE(spec.equivalent(reparsed)) << text;
  EXPECT_EQ(text, scenario::to_spec_text(reparsed));

  // An explicit quorum K survives the round trip too.
  ScenarioSpec quorum;
  quorum.set("workers", "8");
  quorum.set("byzantine", "1@1:collusion,4@1:collusion,6@1:collusion");
  quorum.set("collude-group", "1.4.6:3");
  scenario::finalize_spec(quorum);
  EXPECT_EQ(quorum.collude_min, 3u);
  const auto qtext = scenario::to_spec_text(quorum);
  EXPECT_TRUE(quorum.equivalent(scenario::parse_spec_text(qtext))) << qtext;
}

TEST(ScenarioSpec, AdaptiveAttackKnobCombinationsAreValidated) {
  // :collusion events need a collude-group that lists the worker...
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nbyzantine=1@1:collusion"),
      std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@1:collusion,2@1:collusion\n"
                   "collude-group=1.3"),
               std::invalid_argument);
  // ...and a collude-group without any collusion event is dead weight.
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@1:sign-flip\ncollude-group=1.2"),
               std::invalid_argument);
  // Group members validate against the population, once each.
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@1:collusion\ncollude-group=1.9"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@1:collusion\ncollude-group=1.1"),
               std::invalid_argument);
  // The quorum K must be in [1, group size].
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@1:collusion\ncollude-group=1.2:5"),
               std::invalid_argument);
  // Attenuation without an attack to attenuate is a silent no-op — rejected.
  EXPECT_THROW(scenario::parse_spec_text("workers=4\nadapt-attack=0.5"),
               std::invalid_argument);
  // reputation-decay = 1 never forgets; the monitor requires [0, 1).
  EXPECT_THROW(scenario::parse_spec_text("workers=4\nreputation-decay=1"),
               std::invalid_argument);
  // Attack-aware selection needs the monitor that feeds it.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\nsaps-strategy=reputation"),
      std::invalid_argument);
  EXPECT_NO_THROW(scenario::parse_spec_text(
      "workers=4\nsaps-strategy=reputation\nreputation-decay=0.9"));
  // A worker cannot be scheduled byzantine while a failures= window has it
  // away — the two knobs name the same worker over overlapping windows.
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\nbyzantine=1@2-6:sign-flip\nfailures=1@4-8"),
               std::invalid_argument);
  try {
    (void)scenario::parse_spec_text(
        "workers=4\nbyzantine=1@2-6:sign-flip\nfailures=1@4-8");
    FAIL() << "overlap should throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("byzantine"), std::string::npos) << msg;
    EXPECT_NE(msg.find("failures"), std::string::npos) << msg;
  }
  // Disjoint windows for the same worker are fine.
  EXPECT_NO_THROW(scenario::parse_spec_text(
      "workers=4\nbyzantine=1@2-4:sign-flip\nfailures=1@6-8"));
}

TEST(ScenarioSpec, PopulationKeysResolveAndRoundTrip) {
  ScenarioSpec spec;
  spec.set("workers", "4");
  spec.set("population", "1000");
  spec.set("cohort", "8");
  spec.set("sample-seed", "99");
  scenario::finalize_spec(spec);
  EXPECT_EQ(spec.population, 1000u);
  EXPECT_EQ(spec.cohort, 8u);
  EXPECT_EQ(spec.sample_seed, 99u);
  const auto text = scenario::to_spec_text(spec);
  const auto reparsed = scenario::parse_spec_text(text);
  EXPECT_TRUE(spec.equivalent(reparsed)) << text;
  EXPECT_EQ(text, scenario::to_spec_text(reparsed));

  // The unset defaults resolve to the legacy fully-materialized engine, and
  // the sample seed derives from the top-level seed (printed resolved, so a
  // reparse is equivalent).
  ScenarioSpec legacy;
  scenario::finalize_spec(legacy);
  EXPECT_EQ(legacy.population, legacy.workers);
  EXPECT_EQ(legacy.cohort, legacy.workers);
  EXPECT_NE(legacy.sample_seed, 0u);
}

TEST(ScenarioSpec, PopulationCombinationsAreValidated) {
  // population below the worker (shard-group) count.
  EXPECT_THROW(scenario::parse_spec_text("workers=8\npopulation=4"),
               std::invalid_argument);
  // cohort above the population.
  EXPECT_THROW(
      scenario::parse_spec_text("workers=4\npopulation=100\ncohort=200"),
      std::invalid_argument);
  // Bandwidth matrices and latency matrices are sized by workers.
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\npopulation=100\nbandwidth=uniform"),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=2\npopulation=100\nlatency-matrix=0,1;1,0"),
               std::invalid_argument);
  // Failure workers validate against the POPULATION at resolution time:
  // index 50 is out of [0, workers) but inside the population.
  const auto ok = scenario::parse_spec_text(
      "workers=4\npopulation=100\ncohort=8\nfailures=50@2-4");
  EXPECT_EQ(ok.failures.at(0).worker, 50u);
  EXPECT_THROW(scenario::parse_spec_text(
                   "workers=4\npopulation=100\ncohort=8\nfailures=100@2-4"),
               std::invalid_argument);
}

TEST(ScenarioSpec, DuplicateSpecFileKeysThrowWithBothLineNumbers) {
  try {
    (void)scenario::parse_spec_text("workers=4\nepochs=2\nworkers=8");
    FAIL() << "duplicate key should throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate key 'workers'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  }
  // The preset-scanned `full` key is duplicate-checked like any other.
  EXPECT_THROW(scenario::parse_spec_text("full=true\nfull=false"),
               std::invalid_argument);
  // Comments and blank lines don't shift the reported numbers, and distinct
  // keys never trip the check.
  EXPECT_NO_THROW(scenario::parse_spec_text(
      "# header\n\nworkers=4\n\nepochs=2 # trailing comment\n"));
}

TEST(Runner, CohortSamplingRequiresSupportingAlgorithm) {
  ScenarioSpec spec;
  spec.set("workload", "blob");
  spec.set("workers", "4");
  spec.set("population", "64");
  spec.set("cohort", "4");
  spec.set("epochs", "1");
  spec.set("blob-train", "64");
  spec.set("blob-test", "32");
  scenario::Runner runner(spec);
  EXPECT_THROW((void)runner.run("dpsgd"), std::invalid_argument);
  const auto record = runner.run("fedavg");
  EXPECT_FALSE(record.result.history.empty());
}

// Minimal RFC 8259 validator (objects of string/number members suffice for
// the sink's line grammar); returns the decoded string members.
class JsonLineChecker {
 public:
  explicit JsonLineChecker(const std::string& line) : s_(line) {}

  // Parses the whole line as one object; gtest-fails on any violation.
  std::map<std::string, std::string> parse() {
    std::map<std::string, std::string> strings;
    expect('{');
    while (true) {
      const auto key = parse_string();
      expect(':');
      if (peek() == '"') {
        strings[key] = parse_string();
      } else {
        parse_number();
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes in: " << s_;
    return strings;
  }

 private:
  char peek() {
    EXPECT_LT(pos_, s_.size()) << "truncated JSON: " << s_;
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    ASSERT_EQ(peek(), c) << "at byte " << pos_ << " of: " << s_;
    ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control byte in: " << s_;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          EXPECT_LE(pos_ + 4, s_.size()) << "truncated \\u in: " << s_;
          if (pos_ + 4 > s_.size()) break;
          out += static_cast<char>(
              std::stoi(s_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          break;
        }
        default:
          ADD_FAILURE() << "bad escape '\\" << esc << "' in: " << s_;
      }
    }
    expect('"');
    return out;
  }
  void parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            std::strchr("+-.eE", s_[pos_]) != nullptr)) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "empty number at byte " << start << ": " << s_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Sinks, JsonlEscapesEveryLineToValidJson) {
  // Hostile metadata: quotes, backslashes, newlines (every spec header has
  // them), and sub-0x20 control characters that only \uXXXX can carry.
  scenario::RunMeta meta;
  meta.workload = "blob \"quoted\" \\ back";
  meta.algorithm = "algo\x01\x1f";
  meta.spec_text = "workers=4\nepochs=2\n\ttabbed\x0b\x0c\r\n";
  sim::MetricPoint p;
  p.round = 3;
  p.epoch = 0.5;
  p.loss = 1.25;
  p.accuracy = 0.75;

  std::ostringstream out;
  scenario::JsonlSink sink(out);
  sink.begin_run(meta);
  sink.point(meta, p);
  sink.end_run(meta);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    SCOPED_TRACE(line);
    auto strings = JsonLineChecker(line).parse();
    EXPECT_EQ(strings.at("workload"), meta.workload);
    EXPECT_EQ(strings.at("algorithm"), meta.algorithm);
    if (strings.at("event") == "run_begin") {
      // The spec header round-trips byte-exactly through the escaping.
      EXPECT_EQ(strings.at("spec"), meta.spec_text);
    }
    ++n;
  }
  EXPECT_EQ(n, 3u);  // run_begin, point, run_end
}

TEST(Runner, MakeSinksParsesKindsAndRejectsUnknown) {
  auto list = scenario::make_sinks("table,csv,jsonl");
  EXPECT_FALSE(list.empty());
  EXPECT_TRUE(scenario::make_sinks("").empty());
  EXPECT_THROW((void)scenario::make_sinks("xml"), std::invalid_argument);
}

}  // namespace
}  // namespace saps
