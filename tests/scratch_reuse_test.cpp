// Allocation-count tests for the training/compression hot paths: the
// per-round kernels must be allocation-free at steady state (persistent
// scratch, buffer swaps) apart from buffers whose ownership is handed to the
// caller.  Global operator new/new[] are replaced with counting versions for
// this binary; each test warms its path up, then measures a tight window.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "compress/quantize.hpp"
#include "compress/topk.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace saps {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float() - 0.5f;
  return v;
}

std::size_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(ErrorFeedbackTopK, CompressAllocatesOnlyTheReturnedVectors) {
  const std::size_t n = 4096;
  compress::ErrorFeedbackTopK ef(n, 100.0);
  const auto grad = random_vec(n, 5);
  for (int warm = 0; warm < 3; ++warm) (void)ef.compress(grad);

  for (int i = 0; i < 5; ++i) {
    const std::size_t before = allocations();
    const auto sent = ef.compress(grad);
    const std::size_t per_call = allocations() - before;
    // The returned SparseVector's two buffers leave the compressor, so they
    // are the irreducible floor; the selection scratch and the residual
    // swap must add nothing.
    EXPECT_LE(per_call, 2u) << "call " << i;
    EXPECT_GT(sent.nnz(), 0u);
  }
}

TEST(ErrorFeedbackTopK, SwapResidualMatchesSeedSemantics) {
  // residual after compress == (residual + gradient) with sent coords zeroed.
  const std::size_t n = 257;
  compress::ErrorFeedbackTopK ef(n, 10.0);
  const auto g1 = random_vec(n, 7);
  const auto g2 = random_vec(n, 9);
  std::vector<float> expect(n, 0.0f);
  for (const auto& g : {g1, g2}) {
    for (std::size_t i = 0; i < n; ++i) expect[i] += g[i];
    const auto sent = ef.compress(g);
    for (std::size_t i = 0; i < sent.nnz(); ++i) {
      EXPECT_EQ(sent.values[i], expect[sent.indices[i]]);
      expect[sent.indices[i]] = 0.0f;
    }
    const auto res = ef.residual();
    ASSERT_EQ(res.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res[i], expect[i]) << i;
  }
}

TEST(TopK, WorkspaceOverloadIsAllocationFreeAndEquivalent) {
  const std::size_t n = 2048;
  const auto x = random_vec(n, 11);
  const auto want = compress::top_k(x, 50.0);

  std::vector<std::uint32_t> order;
  compress::SparseVector out;
  compress::top_k(x, 50.0, order, out);  // warm the buffers
  const std::size_t before = allocations();
  compress::top_k(x, 50.0, order, out);
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(out.indices, want.indices);
  EXPECT_EQ(out.values, want.values);
}

TEST(ErrorFeedbackTopK, CompressIntoIsAllocationFreeAfterWarmup) {
  const std::size_t n = 65536;  // threshold-pass selection path
  compress::ErrorFeedbackTopK ef(n, 100.0);
  const auto grad = random_vec(n, 31);
  compress::SparseVector out;
  for (int warm = 0; warm < 3; ++warm) ef.compress_into(grad, out);

  const std::size_t before = allocations();
  for (int i = 0; i < 5; ++i) ef.compress_into(grad, out);
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_GT(out.nnz(), 0u);
}

TEST(TopK, ThresholdPathIsAllocationFreeAndMatchesSortReference) {
  // n=8192 engages the radix threshold-pass selection; the reference is a
  // full stable selection sort by (|x| desc, index asc) — the documented
  // ordering contract shared by both strategies.
  const std::size_t n = 8192;
  const auto x = random_vec(n, 37);
  std::vector<std::uint32_t> ref(n);
  std::iota(ref.begin(), ref.end(), 0u);
  std::sort(ref.begin(), ref.end(), [&](std::uint32_t a, std::uint32_t b) {
    const float fa = std::fabs(x[a]), fb = std::fabs(x[b]);
    return fa > fb || (fa == fb && a < b);
  });
  const std::size_t k = n / 64;
  ref.resize(k);
  std::sort(ref.begin(), ref.end());

  std::vector<std::uint32_t> scratch;
  compress::SparseVector out;
  compress::top_k(x, 64.0, scratch, out);  // warm the buffers
  const std::size_t before = allocations();
  compress::top_k(x, 64.0, scratch, out);
  EXPECT_EQ(allocations() - before, 0u);
  ASSERT_EQ(out.indices, ref);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(out.values[i], x[out.indices[i]]);
  }
}

TEST(Qsgd, IntoOverloadsAreAllocationFreeAfterWarmup) {
  const std::size_t n = 16384;
  const auto x = random_vec(n, 41);
  Rng rng(43);
  compress::QsgdEncoded enc;
  std::vector<float> dec;
  for (int warm = 0; warm < 3; ++warm) {
    compress::qsgd_encode(x, 8, rng, enc);
    compress::qsgd_decode(enc, dec);
  }
  const std::size_t before = allocations();
  for (int i = 0; i < 5; ++i) {
    compress::qsgd_encode(x, 8, rng, enc);
    compress::qsgd_decode(enc, dec);
  }
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(PackedLevels, PackIntoWarmBufferIsAllocationFree) {
  const std::size_t n = 16384;
  Rng rng(47);
  std::vector<std::int8_t> q(n);
  for (auto& v : q) {
    v = static_cast<std::int8_t>(static_cast<int>(rng() % 9) - 4);
  }
  std::vector<std::uint8_t> bytes;
  std::vector<std::int8_t> back(n);
  compress::pack_levels(q, 4, bytes);  // warm the byte buffer
  const std::size_t before = allocations();
  bytes.clear();
  compress::pack_levels(q, 4, bytes);
  compress::unpack_levels(bytes, 4, back);
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(back, q);
}

TEST(Conv2d, BackwardReusesColumnScratchAfterWarmup) {
  nn::Conv2d conv(3, 8, 3, 1, 1);
  std::vector<float> params(conv.param_count()), grads(conv.param_count());
  conv.bind(params, grads);
  Rng rng(13);
  conv.init(rng);

  const std::vector<std::size_t> in_shape{2, 3, 8, 8};
  Tensor in(in_shape), din(in_shape);
  Tensor out(conv.output_shape(in_shape)), dout(conv.output_shape(in_shape));
  auto src = random_vec(in.numel(), 17);
  std::copy(src.begin(), src.end(), in.data());
  auto dsrc = random_vec(dout.numel(), 19);
  std::copy(dsrc.begin(), dsrc.end(), dout.data());

  conv.forward(in, out, true);
  conv.backward(in, dout, din);  // warm cols_/dcols_ and the pack scratch
  const std::size_t before = allocations();
  conv.forward(in, out, true);
  conv.backward(in, dout, din);
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(Gemm, PackScratchIsReusedAcrossCalls) {
  const std::size_t m = 16, k = 144, n = 64;
  const auto a = random_vec(m * k, 23);
  const auto b = random_vec(k * n, 29);
  std::vector<float> c(m * n);
  ops::gemm(a, b, c, m, k, n);  // warm the thread-local packing buffers
  const std::size_t before = allocations();
  for (int i = 0; i < 3; ++i) ops::gemm(a, b, c, m, k, n);
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
}  // namespace saps
