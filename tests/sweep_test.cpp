// Sweep suites: grammar round-trip, deterministic grid expansion, the
// line-numbered rejection list, and the SuiteRunner determinism contract
// (parallel execution bit-identical to serial, including sink bytes).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "scenario/suite.hpp"
#include "scenario/sweep.hpp"

namespace saps::scenario {
namespace {

std::string parse_error(const std::string& text) {
  try {
    (void)parse_sweep_text(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(SweepGrammar, PlainSpecIsOnePointSuite) {
  const auto sweep = parse_sweep_text("workload=blob\nepochs=2\n");
  EXPECT_TRUE(sweep.axes.empty());
  EXPECT_EQ(sweep.point_count(), 1u);
  EXPECT_EQ(sweep.point_label(0), "base");
  const auto spec = sweep.point(0);
  EXPECT_EQ(spec.workload, "blob");
  EXPECT_EQ(spec.epochs, 2u);
}

TEST(SweepGrammar, HasSweepKeysDetectsAxisLines) {
  EXPECT_TRUE(has_sweep_keys("workload=mnist\nsweep.saps-c=4,10\n"));
  EXPECT_FALSE(has_sweep_keys("workload=mnist\nepochs=3\n"));
  // Commented-out axis lines do not count.
  EXPECT_FALSE(has_sweep_keys("# sweep.saps-c=4,10\n"));
}

TEST(SweepGrammar, RoundTripIsLossless) {
  const std::string text =
      "workload=blob\n"
      "algorithm=saps\n"
      "sweep.saps-c=4,10,100\n"
      "sweep.seed=1,2\n";
  const auto s1 = parse_sweep_text(text);
  const auto printed = to_sweep_text(s1);
  const auto s2 = parse_sweep_text(printed);
  EXPECT_EQ(to_sweep_text(s2), printed);
  ASSERT_EQ(s2.point_count(), s1.point_count());
  for (std::size_t i = 0; i < s1.point_count(); ++i) {
    EXPECT_EQ(s2.point_text(i), s1.point_text(i));
    EXPECT_EQ(s2.point_label(i), s1.point_label(i));
  }
}

TEST(SweepGrammar, OdometerLastAxisFastest) {
  const auto sweep = parse_sweep_text(
      "workload=blob\nsweep.saps-c=4,10\nsweep.seed=1,2,3\n");
  ASSERT_EQ(sweep.point_count(), 6u);
  const std::vector<std::string> want = {
      "saps-c=4 seed=1",  "saps-c=4 seed=2",  "saps-c=4 seed=3",
      "saps-c=10 seed=1", "saps-c=10 seed=2", "saps-c=10 seed=3"};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(sweep.point_label(i), want[i]) << "point " << i;
  }
}

TEST(SweepGrammar, SweepingSeedResweepsDerivedSeeds) {
  // Expansion re-parses each point, so sample/bandwidth/fault seeds
  // re-derive from the swept top-level seed instead of freezing.
  const auto sweep = parse_sweep_text("workload=blob\nsweep.seed=1,2\n");
  const auto a = sweep.point(0), b = sweep.point(1);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.sample_seed, b.sample_seed);
  EXPECT_NE(a.bandwidth_seed, b.bandwidth_seed);
  EXPECT_NE(a.fault_seed, b.fault_seed);
}

TEST(SweepGrammar, DirichletShorthandRoundTrips) {
  const auto sweep =
      parse_sweep_text("workload=blob\npartition=dirichlet:0.25\n");
  const auto spec = sweep.point(0);
  EXPECT_EQ(spec.partition, "dirichlet");
  EXPECT_DOUBLE_EQ(spec.dirichlet_alpha, 0.25);
  // The shorthand survives printing (base lines stay raw).
  EXPECT_NE(to_sweep_text(sweep).find("partition=dirichlet:0.25"),
            std::string::npos);
}

TEST(SweepGrammar, RejectsMalformedAndUnknownLines) {
  EXPECT_EQ(parse_error("garbage\n"),
            "sweep spec line 1: expected key=value, got 'garbage'");
  EXPECT_EQ(parse_error("nope=1\n"), "sweep spec line 1: unknown key 'nope'");
  EXPECT_EQ(parse_error("workload=blob\nsweep.nope=1,2\n"),
            "sweep spec line 2: unknown sweep key 'nope'");
}

TEST(SweepGrammar, RejectsDuplicates) {
  EXPECT_EQ(parse_error("epochs=1\nepochs=2\n"),
            "sweep spec line 2: duplicate key 'epochs' (first set on "
            "line 1)");
  EXPECT_EQ(parse_error("sweep.epochs=1,2\nsweep.epochs=3,4\n"),
            "sweep spec line 2: duplicate sweep axis 'sweep.epochs' (first "
            "set on line 1)");
  EXPECT_EQ(parse_error("sweep.epochs=1,2,1\n"),
            "sweep spec line 1: sweep.epochs lists value '1' twice");
  EXPECT_EQ(parse_error("epochs=3\nsweep.epochs=1,2\n"),
            "sweep spec line 2: 'epochs' is both swept and set on line 1");
}

TEST(SweepGrammar, RejectsEmptyAndNonSweepableAxes) {
  EXPECT_EQ(parse_error("sweep.epochs=1,,2\n"),
            "sweep spec line 1: sweep.epochs has an empty value");
  EXPECT_NE(parse_error("sweep.full=true,false\n").find("scale preset"),
            std::string::npos);
  EXPECT_NE(
      parse_error("sweep.threads=1,2\n").find("thread-count invariance"),
      std::string::npos);
}

TEST(SweepGrammar, RejectsSweepingSeedOverPinnedDerivedSeed) {
  const auto msg = parse_error("sample-seed=5\nsweep.seed=1,2\n");
  EXPECT_NE(msg.find("sweeping 'seed' with explicit 'sample-seed' (line 1)"),
            std::string::npos)
      << msg;
  // With no derived seed pinned, sweeping seed is fine.
  EXPECT_EQ(parse_error("sweep.seed=1,2\n"), "");
}

TEST(SweepGrammar, RejectsOversizedGrids) {
  const auto axis = [](const std::string& key) {
    std::string out = "sweep." + key + "=";
    for (int i = 1; i <= 70; ++i) {
      if (i > 1) out += ',';
      out += std::to_string(i);
    }
    out += '\n';
    return out;
  };
  EXPECT_EQ(parse_error(axis("seed") + axis("epochs")),
            "sweep grid has 4900 points; the cap is 4096");
}

TEST(SweepGrammar, PreValidatesEveryPointWithItsLabel) {
  // failures=9@3 is valid per line but names a worker out of range at the
  // workers=4 grid point; the error must name the failing point.
  const auto msg = parse_error("failures=9@3\nsweep.workers=4,16\n");
  EXPECT_NE(msg.find("sweep point 0 (workers=4):"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--failures names worker 9"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// SuiteRunner
// ---------------------------------------------------------------------------

constexpr const char* kSuiteText =
    "workload=blob\n"
    "algorithm=saps\n"
    "workers=4\n"
    "epochs=1\n"
    "samples=48\n"
    "test-samples=32\n"
    "sweep.saps-c=2,4\n"
    "sweep.seed=1,2\n";

struct SuiteOutput {
  std::vector<SuitePointResult> points;
  std::string jsonl;
};

SuiteOutput run_suite(std::size_t threads, Telemetry* telemetry = nullptr) {
  SuiteOutput out;
  std::ostringstream jsonl;
  SinkList sinks;
  sinks.add(std::make_unique<JsonlSink>(jsonl));
  SuiteOptions options;
  options.threads = threads;
  options.sinks = &sinks;
  options.telemetry = telemetry;
  SuiteRunner runner(parse_sweep_text(kSuiteText), options);
  out.points = runner.run();
  out.jsonl = jsonl.str();
  return out;
}

TEST(SuiteRunner, ParallelIsBitIdenticalToSerial) {
  const auto serial = run_suite(0);
  ASSERT_EQ(serial.points.size(), 4u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto parallel = run_suite(threads);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    // Ordered sink bytes are identical, not merely equivalent.
    EXPECT_EQ(parallel.jsonl, serial.jsonl) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      const auto& a = serial.points[i];
      const auto& b = parallel.points[i];
      EXPECT_EQ(b.index, a.index);
      EXPECT_EQ(b.label, a.label);
      ASSERT_EQ(b.runs.size(), a.runs.size());
      for (std::size_t r = 0; r < a.runs.size(); ++r) {
        EXPECT_EQ(b.runs[r].name, a.runs[r].name);
        // Bit-exact model state and metrics.
        EXPECT_EQ(b.runs[r].final_params, a.runs[r].final_params);
        EXPECT_EQ(b.runs[r].result.final().accuracy,
                  a.runs[r].result.final().accuracy);
        EXPECT_EQ(b.runs[r].traffic_mb, a.runs[r].traffic_mb);
      }
    }
  }
}

TEST(SuiteRunner, PinsEngineThreadsPerPoint) {
  SuiteOptions options;
  options.threads = 2;
  SuiteRunner runner(
      parse_sweep_text("workload=blob\nalgorithm=saps\nepochs=1\n"
                       "samples=48\ntest-samples=32\nworkers=4\nthreads=8\n"),
      options);
  const auto points = runner.run();
  ASSERT_EQ(points.size(), 1u);
  // The suite owns the parallelism; per-point engines must stay off the
  // process-global GEMM pool (results are thread-count invariant anyway).
  EXPECT_EQ(points[0].spec.threads, 0u);
}

TEST(SuiteRunner, TelemetryCountsTheSuite) {
  Telemetry telemetry;
  const auto out = run_suite(2, &telemetry);
  ASSERT_EQ(out.points.size(), 4u);
  EXPECT_EQ(telemetry.value("points_total"), 4.0);
  EXPECT_EQ(telemetry.value("points_done"), 4.0);
  EXPECT_EQ(telemetry.value("points_running"), 0.0);
  EXPECT_EQ(telemetry.value("runs_started"), 4.0);
  EXPECT_EQ(telemetry.value("runs_finished"), 4.0);
  EXPECT_GE(telemetry.value("metric_points"), 4.0);
  EXPECT_GT(telemetry.value("best_accuracy"), 0.0);
  const auto snap = telemetry.snapshot();
  EXPECT_EQ(snap.at("points_done"), 4.0);
  EXPECT_TRUE(snap.contains("rounds_per_sec"));
}

TEST(SuiteRunner, ProgressLinesFlushInGridOrder) {
  std::ostringstream progress;
  SuiteOptions options;
  options.threads = 4;
  options.progress = &progress;
  SuiteRunner runner(parse_sweep_text(kSuiteText), options);
  (void)runner.run();
  const auto text = progress.str();
  // Grid order regardless of completion order.
  const auto p1 = text.find("[1/4] saps-c=2 seed=1");
  const auto p2 = text.find("[2/4] saps-c=2 seed=2");
  const auto p3 = text.find("[3/4] saps-c=4 seed=1");
  const auto p4 = text.find("[4/4] saps-c=4 seed=2");
  ASSERT_NE(p1, std::string::npos) << text;
  ASSERT_NE(p4, std::string::npos) << text;
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
}

}  // namespace
}  // namespace saps::scenario
