#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace saps {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW((void)t.dim(3), std::out_of_range);
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, RejectsDataShapeMismatch) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesNumel) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, FillAndAccess) {
  Tensor t({2, 2});
  t.fill(3.0f);
  EXPECT_FLOAT_EQ(t.at2(1, 1), 3.0f);
  t.at2(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t[1], 7.0f);
}

TEST(Ops, AxpyAddSubHadamard) {
  std::vector<float> x = {1, 2, 3}, y = {4, 5, 6}, out(3);
  ops::axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);

  ops::add(x, x, out);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
  ops::sub(y, x, out);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  ops::hadamard(x, x, out);
  EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(Ops, SizeMismatchThrows) {
  std::vector<float> a(3), b(4);
  EXPECT_THROW(ops::axpy(1.0f, a, b), std::invalid_argument);
  EXPECT_THROW((void)ops::dot(a, b), std::invalid_argument);
}

TEST(Ops, DotAndNorms) {
  std::vector<float> a = {3, 4};
  EXPECT_DOUBLE_EQ(ops::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(ops::norm2_sq(a), 25.0);
  EXPECT_DOUBLE_EQ(ops::norm2(a), 5.0);
}

void naive_gemm(const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c, std::size_t m, std::size_t k,
                std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

class GemmTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(derive_seed(777, m, k, n));
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  for (auto& v : a) v = rng.next_float() - 0.5f;
  for (auto& v : b) v = rng.next_float() - 0.5f;
  ops::gemm(a, b, c, m, k, n);
  naive_gemm(a, b, ref, m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST_P(GemmTest, TransposedVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(derive_seed(778, m, k, n));
  // A(k×m), B(k×n): C += AᵀB
  std::vector<float> at(k * m), b(k * n), c(m * n, 0.0f), ref(m * n, 0.0f);
  for (auto& v : at) v = rng.next_float() - 0.5f;
  for (auto& v : b) v = rng.next_float() - 0.5f;
  ops::gemm_at_b_acc(at, b, c, m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        ref[i * n + j] += at[kk * m + i] * b[kk * n + j];
      }
    }
  }
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);

  // A(m×k), B(n×k): C += ABᵀ
  std::vector<float> a(m * k), bt(n * k);
  for (auto& v : a) v = rng.next_float() - 0.5f;
  for (auto& v : bt) v = rng.next_float() - 0.5f;
  std::fill(c.begin(), c.end(), 0.0f);
  std::fill(ref.begin(), ref.end(), 0.0f);
  ops::gemm_a_bt_acc(a, bt, c, m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        ref[i * n + j] += a[i * k + kk] * bt[j * k + kk];
      }
    }
  }
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 65, 17), std::make_tuple(1, 64, 1),
                      std::make_tuple(64, 1, 64)));

TEST(Ops, GemmAccAccumulates) {
  std::vector<float> a = {1, 0, 0, 1};  // 2x2 identity
  std::vector<float> b = {1, 2, 3, 4};
  std::vector<float> c = {10, 10, 10, 10};
  ops::gemm_acc(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Im2col, IdentityKernelNoPad) {
  // 1 channel, 2x2 image, 1x1 kernel → cols == image.
  std::vector<float> img = {1, 2, 3, 4}, cols(4);
  ops::im2col(img, 1, 2, 2, 1, 1, 1, 0, cols);
  EXPECT_EQ(cols, img);
}

TEST(Im2col, KnownLayout3x3) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1, no pad → 4 rows × 4 cols.
  std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4);
  ops::im2col(img, 1, 3, 3, 2, 2, 1, 0, cols);
  // Row 0 = top-left of each window: 1 2 4 5
  EXPECT_FLOAT_EQ(cols[0], 1);
  EXPECT_FLOAT_EQ(cols[1], 2);
  EXPECT_FLOAT_EQ(cols[2], 4);
  EXPECT_FLOAT_EQ(cols[3], 5);
  // Row 3 = bottom-right of each window: 5 6 8 9
  EXPECT_FLOAT_EQ(cols[12], 5);
  EXPECT_FLOAT_EQ(cols[15], 9);
}

TEST(Im2col, PaddingProducesZeros) {
  std::vector<float> img = {1, 2, 3, 4};
  const std::size_t out = 3 * 3;  // 2x2 img, 2x2 kernel, pad 1, stride 1
  std::vector<float> cols(4 * out);
  ops::im2col(img, 1, 2, 2, 2, 2, 1, 1, cols);
  EXPECT_FLOAT_EQ(cols[0], 0.0f);  // top-left window's first element is pad
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property that
  // makes the conv backward correct.
  Rng rng(99);
  const std::size_t C = 2, H = 5, W = 4, K = 3, S = 1, P = 1;
  const std::size_t out_h = (H + 2 * P - K) / S + 1;
  const std::size_t out_w = (W + 2 * P - K) / S + 1;
  std::vector<float> x(C * H * W), y(C * K * K * out_h * out_w);
  for (auto& v : x) v = rng.next_float() - 0.5f;
  for (auto& v : y) v = rng.next_float() - 0.5f;

  std::vector<float> cols(y.size());
  ops::im2col(x, C, H, W, K, K, S, P, cols);
  std::vector<float> back(x.size(), 0.0f);
  ops::col2im(y, C, H, W, K, K, S, P, back);

  EXPECT_NEAR(ops::dot(cols, y), ops::dot(x, back), 1e-3);
}

}  // namespace
}  // namespace saps
