// Shared test fixtures: the blobs-workload engine factory that was
// previously duplicated (with slightly different parameters) across
// saps_test, algos_test, robustness_test, engine_test, and
// integration_test. Each suite keeps its historical dataset parameters via
// BlobSpec so accuracy thresholds remain valid.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "net/bandwidth.hpp"
#include "nn/models.hpp"
#include "sim/engine.hpp"

namespace saps::test_util {

// Parameters of the synthetic blobs workload + the MLP trained on it.
struct BlobSpec {
  std::size_t train_samples = 640;
  std::size_t test_samples = 160;
  std::size_t features = 8;
  std::size_t classes = 4;
  double noise = 0.3;
  std::uint64_t data_seed = 300;
  std::size_t hidden = 16;
};

// Datasets are deterministic in their parameters; cache them because suites
// build dozens of engines and regeneration would dominate test runtime.
inline const std::pair<data::Dataset, data::Dataset>& blob_data(
    const BlobSpec& s) {
  using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                         long long, std::uint64_t>;
  static std::map<Key, std::pair<data::Dataset, data::Dataset>> cache;
  const Key key{s.train_samples, s.test_samples,    s.features,
                s.classes,       std::llround(s.noise * 1e9), s.data_seed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::pair{data::make_blobs(s.train_samples,
                                                      s.features, s.classes,
                                                      s.noise, s.data_seed),
                                     data::make_blobs(s.test_samples,
                                                      s.features, s.classes,
                                                      s.noise, s.data_seed)})
             .first;
  }
  return it->second;
}

// CI plumbing: SAPS_THREADS=N makes every suite-built engine that did not
// ask for a specific thread count run its hot loops on an N-thread pool, so
// the sanitizer build exercises the parallel path (results are thread-count
// invariant, enforced by thread_invariance_test, which builds its engines
// directly and is NOT affected by this).
inline std::size_t env_threads() {
  const char* v = std::getenv("SAPS_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  // Fail loudly on garbage or negatives: a typo'd SAPS_THREADS silently
  // running the serial path would defeat the CI parallel pass.
  if (end == v || *end != '\0' || n < 0 || n > 1024) {
    throw std::invalid_argument("SAPS_THREADS must be an integer in "
                                "[0, 1024], got '" + std::string(v) + "'");
  }
  return static_cast<std::size_t>(n);
}

inline sim::Engine blob_engine(
    sim::SimConfig cfg, const BlobSpec& spec = {},
    std::optional<net::BandwidthMatrix> bw = std::nullopt) {
  if (cfg.threads == 0) cfg.threads = env_threads();
  const auto& [train, test] = blob_data(spec);
  const auto seed = cfg.seed;
  return sim::Engine(
      cfg, train, test,
      [spec, seed] {
        return nn::make_mlp({spec.features}, {spec.hidden}, spec.classes,
                            seed);
      },
      std::move(bw));
}

// Convenience overload matching the historical saps_test/algos_test helper:
// 16-sample batches, lr 0.1, and the default BlobSpec workload.
inline sim::Engine blob_engine(
    std::size_t workers, std::size_t epochs,
    std::optional<net::BandwidthMatrix> bw = std::nullopt,
    std::uint64_t seed = 42, double lr = 0.1) {
  sim::SimConfig cfg;
  cfg.workers = workers;
  cfg.epochs = epochs;
  cfg.batch_size = 16;
  cfg.lr = lr;
  cfg.seed = seed;
  return blob_engine(cfg, BlobSpec{}, std::move(bw));
}

}  // namespace saps::test_util
