// Thread-count invariance: the engine's hot loops (local SGD, compression,
// gossip merge, evaluation) may run on a thread pool, but every reduction
// crosses workers in fixed order, so final model weights and every eval
// metric must be BIT-identical for threads ∈ {0, 1, 4}.  This is the
// acceptance gate for the parallel round loop (docs/ARCHITECTURE.md,
// "Threading model").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/d_psgd.hpp"
#include "algos/fedavg.hpp"
#include "algos/psgd.hpp"
#include "algos/qsgd_psgd.hpp"
#include "algos/topk_psgd.hpp"
#include "core/saps.hpp"
#include "net/bandwidth.hpp"
#include "nn/models.hpp"
#include "sim/engine.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace saps {
namespace {

constexpr std::size_t kThreadCounts[] = {0, 1, 4};

struct RunSnapshot {
  sim::RunResult result;
  std::vector<std::vector<float>> params;  // per worker
  double consensus = 0.0;
};

// Builds the engine directly (NOT via blob_engine) so an external
// SAPS_THREADS setting cannot override the thread count under test.
sim::Engine make_engine(std::size_t threads, bool with_bandwidth) {
  const test_util::BlobSpec spec;
  const auto& [train, test] = test_util::blob_data(spec);
  sim::SimConfig cfg;
  cfg.workers = 8;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.lr = 0.1;
  cfg.seed = 42;
  cfg.threads = threads;
  std::optional<net::BandwidthMatrix> bw;
  if (with_bandwidth) bw = net::random_uniform_bandwidth(cfg.workers, 99);
  return sim::Engine(
      cfg, train, test,
      [spec] {
        return nn::make_mlp({spec.features}, {spec.hidden}, spec.classes,
                            42);
      },
      std::move(bw));
}

RunSnapshot run_with_threads(algos::Algorithm& algo, std::size_t threads,
                             bool with_bandwidth) {
  auto engine = make_engine(threads, with_bandwidth);
  RunSnapshot snap;
  snap.result = algo.run(engine);
  for (std::size_t w = 0; w < engine.workers(); ++w) {
    const auto p = engine.params(w);
    snap.params.emplace_back(p.begin(), p.end());
  }
  snap.consensus = engine.consensus_distance();
  return snap;
}

void expect_identical(const RunSnapshot& base, const RunSnapshot& other,
                      std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  ASSERT_EQ(base.params.size(), other.params.size());
  for (std::size_t w = 0; w < base.params.size(); ++w) {
    ASSERT_EQ(base.params[w].size(), other.params[w].size());
    for (std::size_t j = 0; j < base.params[w].size(); ++j) {
      ASSERT_EQ(base.params[w][j], other.params[w][j])
          << "worker " << w << " coordinate " << j;
    }
  }
  ASSERT_EQ(base.result.history.size(), other.result.history.size());
  for (std::size_t i = 0; i < base.result.history.size(); ++i) {
    const auto& a = base.result.history[i];
    const auto& b = other.result.history[i];
    EXPECT_EQ(a.round, b.round) << "point " << i;
    EXPECT_EQ(a.epoch, b.epoch) << "point " << i;
    EXPECT_EQ(a.loss, b.loss) << "point " << i;
    EXPECT_EQ(a.accuracy, b.accuracy) << "point " << i;
    EXPECT_EQ(a.worker_mb, b.worker_mb) << "point " << i;
    EXPECT_EQ(a.comm_seconds, b.comm_seconds) << "point " << i;
  }
  EXPECT_EQ(base.consensus, other.consensus);
}

template <typename MakeAlgo>
void check_invariance(MakeAlgo make_algo, bool with_bandwidth) {
  std::unique_ptr<RunSnapshot> base;
  for (const auto threads : kThreadCounts) {
    auto algo = make_algo();
    auto snap = run_with_threads(*algo, threads, with_bandwidth);
    if (!base) {
      base = std::make_unique<RunSnapshot>(std::move(snap));
      // Sanity: the serial baseline actually trained.
      EXPECT_GT(base->result.final().accuracy, 0.5);
    } else {
      expect_identical(*base, snap, threads);
    }
  }
}

TEST(ThreadInvariance, SapsPsgdBitIdenticalAcrossThreadCounts) {
  check_invariance(
      [] {
        return std::make_unique<core::SapsPsgd>(
            core::SapsConfig{.compression = 10.0});
      },
      /*with_bandwidth=*/true);
}

TEST(ThreadInvariance, SapsRandomMatchBitIdenticalWithoutBandwidth) {
  check_invariance(
      [] {
        return std::make_unique<core::SapsPsgd>(core::SapsConfig{
            .compression = 10.0,
            .strategy = core::SelectionStrategy::kRandomMatch});
      },
      /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, DPsgdBitIdenticalAcrossThreadCounts) {
  check_invariance([] { return std::make_unique<algos::DPsgd>(); },
                   /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, TopkPsgdBitIdenticalAcrossThreadCounts) {
  check_invariance(
      [] {
        return std::make_unique<algos::TopkPsgd>(
            algos::TopkConfig{.compression = 10.0});
      },
      /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, DcdPsgdBitIdenticalAcrossThreadCounts) {
  check_invariance(
      [] {
        return std::make_unique<algos::DcdPsgd>(
            algos::DcdConfig{.compression = 4.0});
      },
      /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, QsgdPsgdBitIdenticalAcrossThreadCounts) {
  // Covers the per-worker quantization RNG streams and the chunked
  // decode-and-accumulate reduction.
  check_invariance(
      [] {
        return std::make_unique<algos::QsgdPsgd>(
            algos::QsgdConfig{.levels = 4});
      },
      /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, PsgdAllReduceBitIdenticalAcrossThreadCounts) {
  check_invariance([] { return std::make_unique<algos::PsgdAllReduce>(); },
                   /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, FedAvgBitIdenticalAcrossThreadCounts) {
  // Covers the parallel local schedules and the dim-chunked dense
  // aggregation.
  check_invariance(
      [] {
        return std::make_unique<algos::FedAvg>(
            algos::FedAvgConfig{.fraction = 0.5, .local_epochs = 1});
      },
      /*with_bandwidth=*/false);
}

TEST(ThreadInvariance, SparseFedAvgBitIdenticalAcrossThreadCounts) {
  // Covers the masked (sketched-upload) dim-chunked aggregation path.
  check_invariance(
      [] {
        return std::make_unique<algos::FedAvg>(
            algos::FedAvgConfig{.fraction = 0.5,
                                .local_epochs = 1,
                                .upload_compression = 5.0});
      },
      /*with_bandwidth=*/false);
}

// The kernel backend (AVX2 vs portable) joins the cross-product: GEMM,
// quantization, and top-k selection all dispatch on it, and every
// combination of backend × thread count must produce the same run.
template <typename MakeAlgo>
void check_backend_invariance(MakeAlgo make_algo) {
  std::unique_ptr<RunSnapshot> base;
  for (const auto be :
       {ops::GemmBackend::kAvx2, ops::GemmBackend::kPortable}) {
    if (!ops::gemm_backend_available(be)) continue;
    SCOPED_TRACE(be == ops::GemmBackend::kAvx2 ? "backend=avx2"
                                               : "backend=portable");
    ops::set_gemm_backend(be);
    for (const auto threads : kThreadCounts) {
      auto algo = make_algo();
      auto snap = run_with_threads(*algo, threads, false);
      if (!base) {
        base = std::make_unique<RunSnapshot>(std::move(snap));
        EXPECT_GT(base->result.final().accuracy, 0.5);
      } else {
        expect_identical(*base, snap, threads);
      }
    }
  }
  ops::set_gemm_backend(ops::GemmBackend::kAuto);
}

TEST(ThreadInvariance, QsgdBitIdenticalAcrossBackendsAndThreads) {
  // Covers the SIMD quantize/dequantize and bit-pack/unpack fast paths
  // against their portable twins, under every thread count.
  check_backend_invariance([] {
    return std::make_unique<algos::QsgdPsgd>(algos::QsgdConfig{.levels = 4});
  });
}

TEST(ThreadInvariance, TopkBitIdenticalAcrossBackendsAndThreads) {
  // Covers the vectorized threshold-pass top-k against the scalar collect.
  check_backend_invariance([] {
    return std::make_unique<algos::TopkPsgd>(
        algos::TopkConfig{.compression = 10.0});
  });
}

TEST(ThreadInvariance, EvalPointBitIdenticalAcrossThreadCounts) {
  // Isolates the evaluation path: identical trained state, eval with and
  // without the pool's per-thread clone models.
  auto serial = make_engine(0, false);
  auto pooled = make_engine(4, false);
  for (std::size_t w = 0; w < serial.workers(); ++w) {
    serial.sgd_step(w, 0);
    pooled.sgd_step(w, 0);
  }
  const auto a = serial.eval_point(1, 0.5);
  const auto b = pooled.eval_point(1, 0.5);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace saps
