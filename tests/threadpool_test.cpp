// ThreadPool::parallel_for / parallel_chunks unit coverage: index coverage,
// empty ranges, n < threads, block partition properties, and exception
// propagation (including pool reuse after a throw).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace saps {
namespace {

TEST(ThreadPoolParallelFor, RunsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn called for n = 0"; });
}

TEST(ThreadPoolParallelFor, FewerIndicesThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolParallelFor, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(64, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolParallelFor, RethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolParallelFor, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::vector<std::atomic<int>> hits(8);
  pool.parallel_for(8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolParallelChunks, BlocksPartitionRangeInOrder) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> blocks;
  pool.parallel_chunks(103, [&](std::size_t c, std::size_t b, std::size_t e) {
    std::lock_guard lock(mu);
    blocks.push_back({c, b, e});
  });
  ASSERT_EQ(blocks.size(), 4u);
  std::sort(blocks.begin(), blocks.end());
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < blocks.size(); ++c) {
    EXPECT_EQ(blocks[c][0], c);
    EXPECT_EQ(blocks[c][1], expect_begin);
    EXPECT_GT(blocks[c][2], blocks[c][1]);
    // Sizes differ by at most one.
    EXPECT_GE(blocks[c][2] - blocks[c][1], 103u / 4);
    EXPECT_LE(blocks[c][2] - blocks[c][1], 103u / 4 + 1);
    expect_begin = blocks[c][2];
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ThreadPoolParallelChunks, AtMostOneBlockPerElement) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_chunks(3, [&](std::size_t c, std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    EXPECT_LT(c, 3u);
    EXPECT_EQ(e, b + 1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolParallelChunks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_chunks(
      0, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPoolParallelChunks, RethrowsException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_chunks(
                   100,
                   [](std::size_t c, std::size_t, std::size_t) {
                     if (c == 2) throw std::runtime_error("chunk boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace saps
