// Transport unit tests plus the headline integration test: one full
// SAPS-PSGD communication round executed by REAL coordinator/worker threads
// exchanging serialized wire messages, checked bit-identical against the
// sequential masked-average computation.
#include <gtest/gtest.h>

#include <thread>

#include "compress/mask.hpp"
#include "net/wire.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"

namespace saps::sim {
namespace {

TEST(Transport, SendRecvFifo) {
  Transport t(3);
  t.send(0, 1, {1, 2, 3});
  t.send(2, 1, {9});
  const auto a = t.recv(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->from, 0u);
  EXPECT_EQ(a->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  const auto b = t.recv(1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->from, 2u);
  EXPECT_DOUBLE_EQ(t.total_bytes(), 4.0);
}

TEST(Transport, TryRecvOnEmptyIsNull) {
  Transport t(2);
  EXPECT_FALSE(t.try_recv(0).has_value());
  t.send(1, 0, {5});
  EXPECT_TRUE(t.try_recv(0).has_value());
}

TEST(Transport, InvalidEndpointsThrow) {
  Transport t(2);
  EXPECT_THROW(t.send(0, 5, {1}), std::out_of_range);
  EXPECT_THROW(t.send(9, 0, {1}), std::out_of_range);
  EXPECT_THROW(Transport(1), std::invalid_argument);
}

TEST(Transport, ShutdownWakesBlockedReceiver) {
  Transport t(2);
  std::optional<Envelope> got = Envelope{};  // sentinel non-null
  std::thread receiver([&] { got = t.recv(0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.shutdown();
  receiver.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_THROW(t.send(0, 1, {1}), std::logic_error);
}

TEST(Transport, BlockingRecvDeliversCrossThread) {
  Transport t(2);
  std::optional<Envelope> got;
  std::thread receiver([&] { got = t.recv(1); });
  t.send(0, 1, {42});
  receiver.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload[0], 42);
}

TEST(Transport, MailboxesAllocateLazilyOnFirstTouch) {
  // A population-scale transport sizes its endpoint table to thousands of
  // slots, but only the sampled cohort ever exchanges frames — untouched
  // endpoints must not pay for a mailbox.
  Transport t(1000);
  EXPECT_EQ(t.endpoints(), 1000u);
  EXPECT_EQ(t.allocated_mailboxes(), 0u);

  t.send(3, 7, {1, 2});          // materializes destination 7 only
  EXPECT_EQ(t.allocated_mailboxes(), 1u);
  t.send(3, 7, {3});             // reuses the existing mailbox
  EXPECT_EQ(t.allocated_mailboxes(), 1u);

  // try_recv on a never-touched endpoint peeks without allocating.
  EXPECT_FALSE(t.try_recv(999).has_value());
  EXPECT_EQ(t.allocated_mailboxes(), 1u);

  // Delivery order through a lazily-created mailbox is still FIFO.
  const auto a = t.recv(7);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, (std::vector<std::uint8_t>{1, 2}));
  const auto b = t.recv(7);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload, (std::vector<std::uint8_t>{3}));

  // A blocking recv materializes its own mailbox (the waiter must have a
  // condition variable to park on) and shutdown still finds and wakes it.
  std::optional<Envelope> got = Envelope{};  // sentinel non-null
  std::thread receiver([&] { got = t.recv(500); });
  while (t.allocated_mailboxes() < 2) std::this_thread::yield();
  t.shutdown();
  receiver.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Transport, ThreadedSapsRoundMatchesSequential) {
  // 4 workers, 1 coordinator (endpoint 4).  The coordinator broadcasts
  // NotifyMsg (peer + seed); each worker extracts its masked values, sends a
  // MaskedModelMsg to its peer, merges what it receives, and reports
  // RoundEnd.  Result must equal the sequential Eq. (7) update.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kDim = 512;
  constexpr double kC = 5.0;
  const std::uint64_t mask_seed = 0xabcdef12;

  // Initial models.
  std::vector<std::vector<float>> models(kWorkers, std::vector<float>(kDim));
  Rng rng(31);
  for (auto& m : models) {
    for (auto& v : m) v = rng.next_float();
  }
  // Sequential reference: pairs (0,2) and (1,3).
  auto reference = models;
  const auto mask = compress::bernoulli_mask(mask_seed, kDim, kC);
  for (const auto& [i, j] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 2}, {1, 3}}) {
    const auto vi = compress::extract_masked(reference[i], mask);
    const auto vj = compress::extract_masked(reference[j], mask);
    compress::average_masked_inplace(reference[i], mask, vj);
    compress::average_masked_inplace(reference[j], mask, vi);
  }

  // Threaded execution over the transport.
  Transport transport(kWorkers + 1);
  const std::size_t coord = kWorkers;
  const std::size_t peer_of[kWorkers] = {2, 3, 0, 1};

  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  threads.emplace_back([&] {  // coordinator
    for (std::size_t w = 0; w < kWorkers; ++w) {
      net::NotifyMsg notify{.round = 0,
                            .mask_seed = mask_seed,
                            .peer = static_cast<std::uint32_t>(peer_of[w])};
      transport.send(coord, w, notify.encode());
    }
    for (std::size_t w = 0; w < kWorkers; ++w) {
      const auto env = transport.recv(coord);
      ASSERT_TRUE(env.has_value());
      const auto end = net::RoundEndMsg::decode(env->payload);
      EXPECT_EQ(end.round, 0u);
    }
  });
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const auto note_env = transport.recv(w);
      ASSERT_TRUE(note_env.has_value());
      const auto note = net::NotifyMsg::decode(note_env->payload);
      const auto my_mask =
          compress::bernoulli_mask(note.mask_seed, kDim, kC);

      net::MaskedModelMsg out;
      out.mask_seed = note.mask_seed;
      out.round = note.round;
      out.values = compress::extract_masked(models[w], my_mask);
      transport.send(w, note.peer, out.encode());

      const auto peer_env = transport.recv(w);
      ASSERT_TRUE(peer_env.has_value());
      const auto in = net::MaskedModelMsg::decode(peer_env->payload);
      EXPECT_EQ(in.mask_seed, mask_seed);
      compress::average_masked_inplace(models[w], my_mask, in.values);

      transport.send(w, coord,
                     net::RoundEndMsg{.round = note.round,
                                      .rank = static_cast<std::uint32_t>(w)}
                         .encode());
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t w = 0; w < kWorkers; ++w) {
    for (std::size_t j = 0; j < kDim; ++j) {
      EXPECT_EQ(models[w][j], reference[w][j])
          << "worker " << w << " dim " << j;
    }
  }
  // Traffic moved: 4 notifies + 4 masked models + 4 round-ends.
  EXPECT_GT(transport.total_bytes(), 0.0);
}

}  // namespace
}  // namespace saps::sim
