#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace saps {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, AlignedContainsAllCells) {
  Table t({"algo", "acc"});
  t.add_row({"SAPS-PSGD", "99.17"});
  const auto s = t.to_aligned();
  EXPECT_NE(s.find("SAPS-PSGD"), std::string::npos);
  EXPECT_NE(s.find("99.17"), std::string::npos);
  EXPECT_NE(s.find("algo"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(Flags, ParsesKeyValue) {
  const char* argv[] = {"prog", "--workers=32", "--lr=0.05", "--verbose"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("workers", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("lr", 0.0), 0.05);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
}

TEST(Flags, RejectsMalformedToken) {
  const char* argv[] = {"prog", "workers=32"};
  EXPECT_THROW(Flags(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Flags, HelpListsDescribedFlagsInOrder) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, const_cast<char**>(argv));
  f.describe("workers", "worker count").describe("lr", "learning rate");
  EXPECT_TRUE(f.help_requested());
  const auto h = f.help("prog");
  const auto workers_at = h.find("--workers");
  const auto lr_at = h.find("--lr");
  const auto help_at = h.find("--help");
  ASSERT_NE(workers_at, std::string::npos);
  ASSERT_NE(lr_at, std::string::npos);
  ASSERT_NE(help_at, std::string::npos);
  EXPECT_LT(workers_at, lr_at);  // registration order preserved
  EXPECT_NE(h.find("worker count"), std::string::npos);
  EXPECT_NE(h.find("Usage: prog"), std::string::npos);
}

TEST(Flags, StrictModeRejectsUnknownFlag) {
  const char* argv[] = {"prog", "--workers=4", "--wrokers=8"};
  Flags f(3, const_cast<char**>(argv));
  f.describe("workers", "worker count");
  EXPECT_THROW(f.check_unknown(), std::invalid_argument);
}

TEST(Flags, StrictModeAcceptsDescribedAndHelp) {
  const char* argv[] = {"prog", "--workers=4", "--help"};
  Flags f(3, const_cast<char**>(argv));
  f.describe("workers", "worker count");
  EXPECT_NO_THROW(f.check_unknown());  // --help is implicitly known
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, InterpolatesAndBounds) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW((void)percentile(std::span<const double>{}, 50.0),
               std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace saps
