#include <gtest/gtest.h>

#include "compress/mask.hpp"
#include "compress/topk.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace saps::net {
namespace {

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f32(-3.25f);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(r.f32(), -3.25f);
  EXPECT_TRUE(r.done());
}

TEST(ByteCodec, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(ByteCodec, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::out_of_range);
}

TEST(Wire, NotifyRoundTrip) {
  const NotifyMsg msg{.round = 42, .mask_seed = 0xFEEDFACE, .peer = 7};
  const auto bytes = msg.encode();
  EXPECT_EQ(peek_type(bytes), MsgType::kNotify);
  const auto back = NotifyMsg::decode(bytes);
  EXPECT_EQ(back.round, 42u);
  EXPECT_EQ(back.mask_seed, 0xFEEDFACEull);
  EXPECT_EQ(back.peer, 7u);
}

TEST(Wire, RoundEndRoundTrip) {
  const RoundEndMsg msg{.round = 9, .rank = 3};
  const auto back = RoundEndMsg::decode(msg.encode());
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.rank, 3u);
}

TEST(Wire, MaskedModelRoundTripAndSizeContract) {
  MaskedModelMsg msg;
  msg.mask_seed = 123456789;
  msg.round = 17;
  msg.values = {1.5f, -2.25f, 0.0f, 9.75f};
  const auto bytes = msg.encode();
  // The encoded size must equal the accounting formula used by the
  // algorithms: masked_wire_bytes(k) = 16 + 4k.
  EXPECT_DOUBLE_EQ(static_cast<double>(bytes.size()),
                   compress::masked_wire_bytes(msg.values.size()));
  const auto back = MaskedModelMsg::decode(bytes);
  EXPECT_EQ(back.mask_seed, msg.mask_seed);
  EXPECT_EQ(back.round, msg.round);
  EXPECT_EQ(back.values, msg.values);
}

TEST(Wire, MaskedModelEmptyPayload) {
  MaskedModelMsg msg;
  msg.mask_seed = 5;
  const auto back = MaskedModelMsg::decode(msg.encode());
  EXPECT_TRUE(back.values.empty());
}

TEST(Wire, SparseDeltaRoundTripAndSizeContract) {
  SparseDeltaMsg msg;
  msg.round = 3;
  msg.origin = 11;
  msg.indices = {1, 5, 1000};
  msg.values = {0.5f, -1.0f, 2.0f};
  const auto bytes = msg.encode();
  compress::SparseVector equivalent;
  equivalent.indices = msg.indices;
  equivalent.values = msg.values;
  EXPECT_DOUBLE_EQ(static_cast<double>(bytes.size()), equivalent.wire_bytes());
  const auto back = SparseDeltaMsg::decode(bytes);
  EXPECT_EQ(back.indices, msg.indices);
  EXPECT_EQ(back.values, msg.values);
  EXPECT_EQ(back.origin, 11u);
}

TEST(Wire, SparseDeltaRejectsMismatchedArrays) {
  SparseDeltaMsg msg;
  msg.indices = {1, 2};
  msg.values = {1.0f};
  EXPECT_THROW(msg.encode(), std::invalid_argument);
}

TEST(Wire, FullModelRoundTrip) {
  FullModelMsg msg;
  msg.rank = 2;
  Rng rng(8);
  msg.params.resize(1000);
  for (auto& v : msg.params) v = rng.next_float();
  const auto back = FullModelMsg::decode(msg.encode());
  EXPECT_EQ(back.rank, 2u);
  EXPECT_EQ(back.params, msg.params);
}

TEST(Wire, DecodeRejectsWrongType) {
  const NotifyMsg msg{.round = 1, .mask_seed = 2, .peer = 3};
  EXPECT_THROW(RoundEndMsg::decode(msg.encode()), std::invalid_argument);
}

TEST(Wire, PeekTypeOnEmptyThrows) {
  EXPECT_THROW((void)peek_type({}), std::out_of_range);
}

}  // namespace
}  // namespace saps::net
