#!/usr/bin/env python3
"""Gate bench_micro_kernels output against a committed baseline.

Compares the `items_per_second` of every benchmark matching --filter in a
fresh Google-Benchmark JSON capture against bench/baselines/BENCH_kernels.json
and fails (exit 1) when any throughput ratio current/baseline drops below
--min-ratio.

The committed baseline was captured on different hardware than the CI
runner, so the default gate is deliberately loose: it exists to catch SILENT
order-of-magnitude GEMM regressions (a dropped vector path, an accidental
debug build), not single-digit drift.  A PR that intentionally changes
kernel performance refreshes the baseline in the same commit (see
docs/BENCHMARKS.md, "Kernel baselines").
"""

import argparse
import json
import re
import sys


def load_throughputs(path, name_re):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name_re.search(name):
            continue
        ips = bench.get("items_per_second")
        if ips:
            out[name] = float(ips)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly captured JSON")
    ap.add_argument(
        "--filter",
        default=r"^BM_Gemm",
        help="regex selecting the gated benchmarks (default: the GEMM family)",
    )
    ap.add_argument(
        "--min-ratio",
        type=float,
        default=0.35,
        help="fail when current/baseline items_per_second drops below this",
    )
    args = ap.parse_args()

    name_re = re.compile(args.filter)
    baseline = load_throughputs(args.baseline, name_re)
    current = load_throughputs(args.current, name_re)
    if not baseline:
        print(f"error: no benchmarks matching {args.filter!r} in baseline")
        return 2

    failed = []
    missing = []
    print(f"{'benchmark':48} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for name, base_ips in sorted(baseline.items()):
        cur_ips = current.get(name)
        if cur_ips is None:
            missing.append(name)
            print(f"{name:48} {base_ips:14.4g} {'MISSING':>14} {'-':>7}")
            continue
        ratio = cur_ips / base_ips
        flag = "" if ratio >= args.min_ratio else "  << REGRESSION"
        print(f"{name:48} {base_ips:14.4g} {cur_ips:14.4g} {ratio:7.2f}"
              f"{flag}")
        if ratio < args.min_ratio:
            failed.append((name, ratio))

    if missing:
        print(f"\nerror: {len(missing)} gated benchmark(s) missing from the "
              "current capture (renamed or skipped?)")
        return 1
    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) below min-ratio "
              f"{args.min_ratio} vs bench/baselines — see docs/BENCHMARKS.md")
        return 1
    print(f"\nOK: all {len(baseline)} gated benchmarks within tolerance "
          f"(min-ratio {args.min_ratio})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
